//! Complete containment test for conjunctive queries with comparison
//! predicates over a dense order (Klug \[28\]; van der Meyden \[39\]).
//!
//! `Q1 ⊆ Q2` iff for **every** linearization `L` of Q1's terms (together
//! with Q2's constants) consistent with Q1's comparison constraints, some
//! disjunct of Q2 admits a containment mapping into the `L`-quotient of Q1
//! whose comparison literals hold under `L`. The `L`-quotient identifies
//! the terms `L` makes equal — the canonical database for `L` collapses
//! them to one value, so the mapping target must too.
//!
//! Interpretation of constants (faithful to the paper's single dense
//! domain): numeric constants sit at their known positions; symbolic
//! constants (`red`) and function terms denote domain elements whose order
//! is unknown. Distinct constants are distinct elements; function terms
//! are unconstrained.
//!
//! A sound fast path avoids the exponential enumeration when a single
//! mapping's comparison images are *entailed* by Q1's constraints —
//! which settles every containment in the paper's examples.

use std::collections::HashMap;
use std::ops::ControlFlow;

use qc_constraints::{
    for_each_linearization, CompOp, Constraint, ConstraintSet, Linearization, Node, Rat, VarId,
};
use qc_datalog::{Comparison, ConjunctiveQuery, Const, Subst, Term, Ucq, Var};

use crate::homomorphism::{apply_mapping, for_each_containment_mapping, Mapping};

/// Maps datalog terms to constraint-solver nodes.
///
/// * variables → solver variables;
/// * numeric constants → solver constants;
/// * symbolic constants and ground function terms → *pseudo-variables*
///   (unknown positions in the dense order), with background disequalities
///   between distinct constants.
#[derive(Debug, Default)]
pub struct NodeMap {
    vars: HashMap<Var, VarId>,
    pseudo: HashMap<Term, VarId>,
    next: u32,
    /// Numeric constants seen so far; the background facts assert that
    /// every symbolic constant differs from each of them.
    nums_seen: Vec<Rat>,
}

impl NodeMap {
    /// Creates an empty map.
    pub fn new() -> NodeMap {
        NodeMap::default()
    }

    /// The node for a term (allocating ids on first sight).
    pub fn node(&mut self, t: &Term) -> Node {
        match t {
            Term::Var(v) => {
                if let Some(id) = self.vars.get(v) {
                    return Node::Var(*id);
                }
                let id = VarId(self.next);
                self.next += 1;
                self.vars.insert(*v, id);
                Node::Var(id)
            }
            Term::Const(Const::Num(r)) => Node::Const(*r),
            Term::Const(Const::Sym(_)) | Term::App(..) => {
                if let Some(id) = self.pseudo.get(t) {
                    return Node::Var(*id);
                }
                let id = VarId(self.next);
                self.next += 1;
                self.pseudo.insert(t.clone(), id);
                Node::Var(id)
            }
        }
    }

    /// Background facts: distinct constants denote distinct elements.
    /// (Pairs of numeric constants are ordered by value already; symbolic
    /// constants get explicit `!=` against every other constant.)
    pub fn background(&mut self) -> ConstraintSet {
        let mut set = ConstraintSet::new();
        let syms: Vec<(Term, VarId)> = self
            .pseudo
            .iter()
            .filter(|(t, _)| matches!(t, Term::Const(Const::Sym(_))))
            .map(|(t, id)| (t.clone(), *id))
            .collect();
        for (i, (_, a)) in syms.iter().enumerate() {
            for (_, b) in syms.iter().skip(i + 1) {
                set.add(Node::Var(*a), CompOp::Ne, Node::Var(*b));
            }
        }
        // Symbolic constants differ from every numeric constant in play.
        let nums: Vec<Node> = self.nums_seen.iter().map(|r| Node::Const(*r)).collect();
        for (_, a) in &syms {
            for n in &nums {
                set.add(Node::Var(*a), CompOp::Ne, *n);
            }
        }
        set
    }
}

/// Converts a list of comparison literals to a constraint set via `map`.
pub fn comparisons_to_constraints(comps: &[Comparison], map: &mut NodeMap) -> ConstraintSet {
    let mut set = ConstraintSet::new();
    for c in comps {
        let l = map.node(&c.lhs);
        let r = map.node(&c.rhs);
        set.add(l, c.op, r);
    }
    set
}

/// Decides `q1 ⊆ u2` where both sides may contain comparison literals,
/// interpreted over a dense order. Complete (Klug's test).
pub fn cq_contained_in_ucq(q1: &ConjunctiveQuery, u2: &Ucq) -> bool {
    if q1.head.arity() != u2.arity {
        return false;
    }
    let mut map = NodeMap::new();

    // Terms of q1 (the linearization universe) plus u2's constants.
    let q1_terms = q1.all_terms();
    let mut universe: Vec<(Term, Node)> = Vec::new();
    for t in &q1_terms {
        universe.push((t.clone(), map.node(t)));
    }
    for c in u2.consts() {
        let t = Term::Const(c);
        if !universe.iter().any(|(u, _)| u == &t) {
            universe.push((t.clone(), map.node(&t)));
        }
    }
    // Record every numeric constant so the background != facts cover them.
    map.nums_seen = universe
        .iter()
        .filter_map(|(t, _)| match t {
            Term::Const(Const::Num(r)) => Some(*r),
            _ => None,
        })
        .collect();
    // Also numeric constants inside u2's comparisons and q1's comparisons
    // appear in the universe already via all_terms / consts.

    let c1 = comparisons_to_constraints(&q1.comparisons, &mut map).and(&map.background());
    if !c1.is_satisfiable() {
        return true; // q1 is unsatisfiable: contained in everything
    }

    // Fast path: one mapping whose comparison images are entailed by C1
    // covers every linearization at once.
    let mut fast = false;
    for d2 in &u2.disjuncts {
        if exists_mapping_with(d2, q1, &mut map, |imgs, map| {
            imgs.iter().all(|c| {
                let l = map.node(&c.lhs);
                let r = map.node(&c.rhs);
                c1.entails(Constraint::new(l, c.op, r))
            })
        }) {
            fast = true;
            break;
        }
    }
    if fast {
        return true;
    }

    // Complete path: enumerate linearizations of the universe consistent
    // with C1; each must be covered by some disjunct.
    let nodes: Vec<Node> = universe.iter().map(|(_, n)| *n).collect();
    for_each_linearization(&c1, &nodes, |lin| {
        if linearization_covered(q1, u2, &universe, &mut map, lin) {
            ControlFlow::Continue(())
        } else {
            ControlFlow::Break(())
        }
    })
}

/// Whether some disjunct of `u2` maps into the `lin`-quotient of `q1` with
/// its comparisons satisfied by `lin`.
fn linearization_covered(
    q1: &ConjunctiveQuery,
    u2: &Ucq,
    universe: &[(Term, Node)],
    map: &mut NodeMap,
    lin: &Linearization,
) -> bool {
    // Quotient q1 by lin's equality blocks: pick a representative per
    // block (the constant if present — at most one, since distinct
    // constants are never equal under the background facts).
    let mut rep_of_block: HashMap<usize, Term> = HashMap::new();
    for (t, n) in universe {
        let b = lin.block_of(*n).expect("universe covered");
        let entry = rep_of_block.entry(b).or_insert_with(|| t.clone());
        if matches!(t, Term::Const(_)) {
            *entry = t.clone();
        }
    }
    let mut sigma = Subst::new();
    for (t, n) in universe {
        let b = lin.block_of(*n).expect("universe covered");
        let rep = &rep_of_block[&b];
        if let Term::Var(v) = t {
            if rep != t {
                sigma.bind(*v, rep.clone());
            }
        }
        // Non-variable terms equated with a different representative can
        // only be pseudo-terms equated with each other; constants never
        // merge, and a function term equated with a variable keeps the
        // constant/app as representative via the preference above. A
        // function term equated with another function term cannot be
        // expressed by substitution — such linearizations make the
        // canonical database identify two ground terms, which only ever
        // *adds* homomorphisms targeting them; we conservatively skip the
        // identification (sound: we may answer "not covered" for a
        // linearization that is covered, erring toward non-containment
        // only in the presence of ground function terms, which the
        // paper's constructions eliminate before containment checks).
    }
    let q1_quot = q1.substitute(&sigma);

    for d2 in &u2.disjuncts {
        let found = exists_mapping_with(d2, &q1_quot, map, |imgs, map| {
            imgs.iter().all(|c| {
                let l = map.node(&c.lhs);
                let r = map.node(&c.rhs);
                // The image terms are q1-quotient terms; their nodes are in
                // the linearization universe (representatives are universe
                // members). Fresh nodes (e.g. a constant of d2 pulled in by
                // the mapping... cannot happen: images are q1 terms or d2
                // constants, both in the universe).
                lin.satisfies(l, c.op, r).unwrap_or(false)
            })
        });
        if found {
            return true;
        }
    }
    false
}

/// Whether a containment mapping `d2 → target` exists whose comparison
/// images satisfy `check`.
fn exists_mapping_with(
    d2: &ConjunctiveQuery,
    target: &ConjunctiveQuery,
    map: &mut NodeMap,
    mut check: impl FnMut(&[Comparison], &mut NodeMap) -> bool,
) -> bool {
    let mut found = false;
    for_each_containment_mapping(d2, target, |m: &Mapping| {
        let imgs: Vec<Comparison> = d2
            .comparisons
            .iter()
            .map(|c| Comparison::new(apply_mapping(m, &c.lhs), c.op, apply_mapping(m, &c.rhs)))
            .collect();
        if check(&imgs, map) {
            found = true;
            ControlFlow::Break(())
        } else {
            ControlFlow::Continue(())
        }
    });
    found
}

#[cfg(test)]
mod tests {
    use super::*;
    use qc_datalog::parse_query;

    fn q(s: &str) -> ConjunctiveQuery {
        parse_query(s).unwrap()
    }

    fn contained(a: &str, b: &str) -> bool {
        cq_contained_in_ucq(&q(a), &Ucq::single(q(b)))
    }

    #[test]
    fn semi_interval_strengthening() {
        // Y < 1960 is stronger than Y < 1970.
        assert!(contained(
            "q(X) :- car(X, Y), Y < 1960.",
            "q(X) :- car(X, Y), Y < 1970."
        ));
        assert!(!contained(
            "q(X) :- car(X, Y), Y < 1970.",
            "q(X) :- car(X, Y), Y < 1960."
        ));
    }

    #[test]
    fn le_vs_lt() {
        assert!(contained(
            "q(X) :- car(X, Y), Y < 1970.",
            "q(X) :- car(X, Y), Y <= 1970."
        ));
        assert!(!contained(
            "q(X) :- car(X, Y), Y <= 1970.",
            "q(X) :- car(X, Y), Y < 1970."
        ));
    }

    #[test]
    fn unsatisfiable_query_contained_in_everything() {
        assert!(contained(
            "q(X) :- car(X, Y), Y < 1960, Y > 1970.",
            "q(X) :- zebra(X, X)."
        ));
    }

    #[test]
    fn constant_equality_via_comparison() {
        // Y = 10 in the body acts like the constant 10.
        assert!(contained("q(X) :- r(X, Y), Y = 10.", "q(X) :- r(X, 10)."));
        assert!(contained("q(X) :- r(X, 10).", "q(X) :- r(X, Y), Y = 10."));
    }

    #[test]
    fn klug_case_needs_linearization_split() {
        // Classic: q1 :- r(X), r(Y) (no constraints) is contained in
        // q2 :- r(A), r(B), A <= B — every linearization of {X, Y} admits
        // a mapping (A, B pick the smaller/larger), but NO single mapping
        // works for all linearizations.
        assert!(contained(
            "q() :- r(X), r(Y).",
            "q() :- r(A), r(B), A <= B."
        ));
        // The strict version fails: the linearization X = Y kills it.
        assert!(!contained(
            "q() :- r(X), r(Y).",
            "q() :- r(A), r(B), A < B."
        ));
    }

    #[test]
    fn union_split_by_order() {
        // r(X), s(Y) ⊆ (A < B) ∪ (A >= B) needs the union per
        // linearization: the distinct predicates force A -> X, B -> Y.
        let q1 = q("q() :- r(X), s(Y).");
        let u2 = Ucq::new(vec![
            q("q() :- r(A), s(B), A < B."),
            q("q() :- r(A), s(B), A >= B."),
        ])
        .unwrap();
        assert!(cq_contained_in_ucq(&q1, &u2));
        // Neither disjunct alone contains q1.
        assert!(!cq_contained_in_ucq(
            &q1,
            &Ucq::single(u2.disjuncts[0].clone())
        ));
        assert!(!cq_contained_in_ucq(
            &q1,
            &Ucq::single(u2.disjuncts[1].clone())
        ));
    }

    #[test]
    fn containee_constraints_enable_mapping() {
        // q1's own constraint Y < 1970 entails Y < 2000 for the mapping.
        assert!(contained(
            "q(X) :- car(X, Y), Y < 1970.",
            "q(X) :- car(X, Z), Z < 2000."
        ));
    }

    #[test]
    fn symbolic_constants_have_unknown_order() {
        // A variable equal to 'red' could be anywhere in the order, so
        // Y < 1970 does not hold for it.
        assert!(!contained(
            "q(X) :- car(X, red).",
            "q(X) :- car(X, Y), Y < 1970."
        ));
        // But distinct symbolic constants are distinct.
        assert!(contained(
            "q(X) :- car(X, red), car(X, blue).",
            "q(X) :- car(X, A), car(X, B), A != B."
        ));
    }

    #[test]
    fn ne_requires_distinctness() {
        assert!(!contained(
            "q() :- r(X), r(Y).",
            "q() :- r(A), r(B), A != B."
        ));
        assert!(contained(
            "q() :- r(X), r(Y), X < Y.",
            "q() :- r(A), r(B), A != B."
        ));
    }

    #[test]
    fn head_arity_mismatch() {
        assert!(!contained("q(X) :- r(X, Y).", "q(X, Y) :- r(X, Y)."));
    }

    #[test]
    fn comparison_free_agrees_with_chandra_merlin() {
        let pairs = [
            ("q(X) :- r(X, Y).", "q(X) :- r(X, Z).", true),
            ("q(X) :- r(X, X).", "q(X) :- r(X, Y).", true),
            ("q(X) :- r(X, Y).", "q(X) :- r(X, X).", false),
        ];
        for (a, b, expect) in pairs {
            assert_eq!(contained(a, b), expect, "{a} vs {b}");
            assert_eq!(
                crate::cq::cq_contained(&q(a), &q(b)),
                expect,
                "dispatch {a} vs {b}"
            );
        }
    }

    #[test]
    fn quotient_identification_matters() {
        // q1 has separate X, Y; q2 requires them equal. Only the
        // linearization X = Y admits a mapping, others fail -> overall
        // not contained. But with q1 constraint X = Y, contained.
        assert!(!contained("q() :- r(X), s(Y).", "q() :- r(A), s(A)."));
        assert!(contained("q() :- r(X), s(Y), X = Y.", "q() :- r(A), s(A)."));
    }

    #[test]
    fn between_constants() {
        // 1960 < Y < 1970 entails Y != 1965? No! Y could be 1965.
        assert!(!contained(
            "q(X) :- car(X, Y), Y > 1960, Y < 1970.",
            "q(X) :- car(X, Y), Y != 1965."
        ));
        // It does entail Y != 1970 and Y != 1955.
        assert!(contained(
            "q(X) :- car(X, Y), Y > 1960, Y < 1970.",
            "q(X) :- car(X, Y), Y != 1970."
        ));
    }
}
