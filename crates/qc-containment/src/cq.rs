//! Containment and equivalence of (unions of) conjunctive queries.
//!
//! The comparison-free procedures live here (Chandra–Merlin and
//! Sagiv–Yannakakis); queries with comparison literals are dispatched to
//! the complete test in [`crate::comparisons`].

use qc_datalog::{ConjunctiveQuery, Ucq};

use crate::comparisons;
use crate::engine;
use crate::homomorphism::containment_mapping;

/// Decides `q1 ⊆ q2`.
///
/// Dispatches on comparison presence: comparison-free pairs use the
/// Chandra–Merlin containment-mapping test (NP); pairs with comparisons
/// use the complete dense-order test of [`crate::comparisons`] (Π₂ᵖ).
pub fn cq_contained(q1: &ConjunctiveQuery, q2: &ConjunctiveQuery) -> bool {
    if q1.is_comparison_free() && q2.is_comparison_free() {
        containment_mapping(q2, q1).is_some()
    } else {
        comparisons::cq_contained_in_ucq(q1, &Ucq::single(q2.clone()))
    }
}

/// Decides `q1 ≡ q2`.
pub fn cq_equivalent(q1: &ConjunctiveQuery, q2: &ConjunctiveQuery) -> bool {
    cq_contained(q1, q2) && cq_contained(q2, q1)
}

/// Decides `u1 ⊆ u2` for unions of conjunctive queries.
///
/// `u1 ⊆ u2` iff every disjunct of `u1` is contained in `u2`; for a
/// comparison-free disjunct this reduces to containment in *some* disjunct
/// of `u2` (Sagiv–Yannakakis \[35\]); with comparisons the whole union on
/// the right must be considered per linearization, which
/// [`comparisons::cq_contained_in_ucq`] does.
///
/// The per-disjunct checks are independent; with
/// [`engine::EngineOptions::parallelism`] `> 1` they fan out across scoped
/// worker threads (the verdict is the conjunction either way, so the
/// result is identical to the sequential early-exit path).
pub fn ucq_contained(u1: &Ucq, u2: &Ucq) -> bool {
    if engine::current().parallelism > 1 && u1.disjuncts.len() > 1 {
        engine::parallel_map(&u1.disjuncts, |d| comparisons::cq_contained_in_ucq(d, u2))
            .into_iter()
            .all(|v| v)
    } else {
        u1.disjuncts
            .iter()
            .all(|d| comparisons::cq_contained_in_ucq(d, u2))
    }
}

/// Decides `u1 ≡ u2`.
pub fn ucq_equivalent(u1: &Ucq, u2: &Ucq) -> bool {
    ucq_contained(u1, u2) && ucq_contained(u2, u1)
}

/// Removes redundant disjuncts from a union: a disjunct contained in the
/// rest of the union contributes nothing. Among equivalent disjuncts the
/// first is kept. The result is equivalent to the input (and is how the
/// paper presents its plans, e.g. Example 4's `P3`).
pub fn minimize_union(u: &Ucq) -> Ucq {
    let mut kept: Vec<ConjunctiveQuery> = Vec::new();
    for (i, d) in u.disjuncts.iter().enumerate() {
        // Is d contained in the union of all *other* disjuncts that will
        // survive / come later? Conservative pairwise check: contained in
        // a single other disjunct (with tie-breaking on equivalence).
        let subsumed = u.disjuncts.iter().enumerate().any(|(j, other)| {
            i != j
                && comparisons::cq_contained_in_ucq(d, &Ucq::single(other.clone()))
                && !(comparisons::cq_contained_in_ucq(other, &Ucq::single(d.clone())) && j > i)
        });
        if !subsumed {
            kept.push(d.clone());
        }
    }
    if kept.is_empty() {
        Ucq::empty(u.pred.as_str(), u.arity)
    } else {
        Ucq::new(kept).expect("disjuncts share the union head")
    }
}

/// Minimizes a comparison-free conjunctive query to its core: repeatedly
/// drops a subgoal when the query with that subgoal removed still maps
/// back onto the original (the classic Chandra–Merlin minimization; the
/// result is unique up to isomorphism).
///
/// Queries with comparisons are returned unchanged (minimization in the
/// presence of comparisons would require entailment-aware equivalence and
/// is not needed by the paper's constructions).
pub fn minimize(q: &ConjunctiveQuery) -> ConjunctiveQuery {
    if !q.is_comparison_free() {
        return q.clone();
    }
    let mut current = q.clone();
    loop {
        let mut reduced = None;
        for i in 0..current.subgoals.len() {
            let mut candidate = current.clone();
            candidate.subgoals.remove(i);
            // The candidate must stay safe (head vars still covered) and
            // equivalent: candidate ⊆ current always (more constraints on
            // current? no: candidate has FEWER subgoals so current ⊆
            // candidate trivially via identity); we need candidate ⊆
            // current, i.e. a mapping from current into candidate.
            let head_ok = candidate
                .head_vars()
                .iter()
                .all(|v| candidate.subgoals.iter().any(|a| a.vars().contains(v)));
            if !head_ok {
                continue;
            }
            if containment_mapping(&current, &candidate).is_some() {
                reduced = Some(candidate);
                break;
            }
        }
        match reduced {
            Some(c) => current = c,
            None => return current,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qc_datalog::parse_query;

    fn q(s: &str) -> ConjunctiveQuery {
        parse_query(s).unwrap()
    }

    fn ucq(srcs: &[&str]) -> Ucq {
        Ucq::new(srcs.iter().map(|s| q(s)).collect()).unwrap()
    }

    #[test]
    fn paper_example1_classical_claims() {
        // "Q2 is contained in Q1 because Q2 applies a stronger condition
        //  (Rating = 10) than Q1, but Q1 is not contained in Q2."
        let q1 =
            q("q1(CarNo, Review) :- CarDesc(CarNo, Model, C, Y), Review(Model, Review, Rating).");
        let q2 = q("q2(CarNo, Review) :- CarDesc(CarNo, Model, C, Y), Review(Model, Review, 10).");
        assert!(cq_contained(&q2, &q1));
        assert!(!cq_contained(&q1, &q2));
        // "Likewise, Q3 is contained in Q2, but not vice versa."
        let q3 = q(
            "q3(CarNo, Review) :- CarDesc(CarNo, Model, C, Y), Review(Model, Review, 10), Y < 1970.",
        );
        assert!(cq_contained(&q3, &q2));
        assert!(!cq_contained(&q2, &q3));
    }

    #[test]
    fn containment_is_reflexive_and_transitive_on_samples() {
        let samples = [
            q("q(X) :- r(X, Y)."),
            q("q(X) :- r(X, X)."),
            q("q(X) :- r(X, Y), r(Y, X)."),
        ];
        for s in &samples {
            assert!(cq_contained(s, s));
        }
        // r(X,X) ⊆ r(X,Y) ⊆ ... chain.
        assert!(cq_contained(&samples[1], &samples[0]));
        assert!(cq_contained(&samples[1], &samples[2]));
    }

    #[test]
    fn ucq_containment() {
        let u1 = ucq(&["q(X) :- a(X).", "q(X) :- b(X)."]);
        let u2 = ucq(&["q(X) :- a(X).", "q(X) :- b(X).", "q(X) :- c(X)."]);
        assert!(ucq_contained(&u1, &u2));
        assert!(!ucq_contained(&u2, &u1));
        assert!(!ucq_equivalent(&u1, &u2));
        assert!(ucq_equivalent(&u1, &u1));
    }

    #[test]
    fn empty_union_is_bottom() {
        let empty = Ucq::empty("q", 1);
        let u = ucq(&["q(X) :- a(X)."]);
        assert!(ucq_contained(&empty, &u));
        assert!(!ucq_contained(&u, &empty));
    }

    #[test]
    fn ucq_disjunct_contained_in_union_not_single() {
        // q(X) :- r(X) with r split... a disjunct contained in the union
        // only via one particular disjunct.
        let u1 = ucq(&["q(X) :- a(X), b(X)."]);
        let u2 = ucq(&["q(X) :- a(X).", "q(X) :- c(X)."]);
        assert!(ucq_contained(&u1, &u2));
    }

    #[test]
    fn minimize_removes_redundant_subgoals() {
        // r(X, Y), r(X, Z) minimizes to r(X, Y).
        let big = q("q(X) :- r(X, Y), r(X, Z).");
        let min = minimize(&big);
        assert_eq!(min.subgoals.len(), 1);
        assert!(cq_equivalent(&big, &min));
        // A core stays put.
        let core = q("q(X, Y) :- e(X, Z), e(Z, Y).");
        assert_eq!(minimize(&core).subgoals.len(), 2);
    }

    #[test]
    fn minimize_respects_constants() {
        let big = q("q(X) :- r(X, 10), r(X, Y).");
        // r(X, Y) maps onto r(X, 10), so the core is r(X, 10).
        let min = minimize(&big);
        assert_eq!(min.subgoals.len(), 1);
        assert_eq!(min.subgoals[0].args[1], qc_datalog::Term::int(10));
    }

    #[test]
    fn minimize_keeps_comparison_queries_intact() {
        let c = q("q(X) :- r(X, Y), r(X, Z), Y < 10.");
        assert_eq!(minimize(&c).subgoals.len(), 2);
    }

    #[test]
    fn minimize_union_drops_subsumed_disjuncts() {
        let u = ucq(&[
            "q(X) :- a(X).",
            "q(X) :- a(X), b(X).", // subsumed by the first
            "q(X) :- c(X).",
        ]);
        let m = minimize_union(&u);
        assert_eq!(m.disjuncts.len(), 2);
        assert!(ucq_equivalent(&m, &u));
        // Equivalent duplicates collapse to one.
        let dup = ucq(&["q(X) :- a(X).", "q(Z) :- a(Z)."]);
        assert_eq!(minimize_union(&dup).disjuncts.len(), 1);
        // With comparisons: the weaker window subsumes the stronger.
        let cmpu = ucq(&["q(X) :- a(X, Y), Y < 1950.", "q(X) :- a(X, Y), Y < 1970."]);
        let m2 = minimize_union(&cmpu);
        assert_eq!(m2.disjuncts.len(), 1);
        assert_eq!(
            m2.disjuncts[0].comparisons[0].rhs,
            qc_datalog::Term::int(1970)
        );
    }

    #[test]
    fn boolean_queries() {
        let a = q("q() :- r(X, Y).");
        let b = q("q() :- r(X, X).");
        assert!(cq_contained(&b, &a));
        assert!(!cq_contained(&a, &b));
    }
}
