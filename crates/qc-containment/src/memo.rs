//! Canonical containment memo: a bounded cache of CQ ⊑ CQ verdicts.
//!
//! The rewriting pipelines (`minicon`, Theorem 3.1 enumeration, and the
//! datalog ⊆ UCQ type fixpoint) re-test the same (candidate, query) pairs
//! across partitions and iterations. Containment verdicts are invariant
//! under variable renaming and head-predicate renaming, so verdicts are
//! cached under *canonical keys*: [`qc_datalog::Rule::canonicalize`] forms
//! of both queries with head predicates normalized to a fixed symbol.
//! α-equivalent pairs therefore share one cache entry, and a cache hit is
//! verdict-preserving by construction (see DESIGN.md §Join-aware engine).
//!
//! The cache is *thread-local* (each worker of the parallel fan-out warms
//! its own, keeping lookups lock-free and counter totals deterministic)
//! and bounded by a two-generation LRU approximation: when the current
//! generation fills up it becomes the previous generation and the oldest
//! entries are discarded wholesale. Lookups promote previous-generation
//! hits, so the resident set stays within `2 × capacity` with O(1)
//! operations. Capacity comes from
//! [`crate::engine::EngineOptions::memo_capacity`]; `0` bypasses the cache
//! entirely (the naïve reference path), and under adaptive tiering
//! near-trivial questions skip it too
//! ([`crate::engine::EngineOptions::tier_memo_size`]).

use std::cell::RefCell;
use std::collections::HashMap;

use qc_datalog::{ConjunctiveQuery, Rule, Symbol};

use crate::cq::cq_contained;
use crate::engine;

/// A canonical containment question: canonical forms of both sides.
type Key = (Rule, Rule);

#[derive(Debug, Default)]
struct GenCache {
    current: HashMap<Key, bool>,
    previous: HashMap<Key, bool>,
    capacity: usize,
}

impl GenCache {
    fn lookup(&mut self, key: &Key) -> Option<bool> {
        if let Some(&v) = self.current.get(key) {
            return Some(v);
        }
        if let Some(v) = self.previous.remove(key) {
            // Promote: recently used entries survive the next rotation.
            self.store(key.clone(), v);
            return Some(v);
        }
        None
    }

    fn store(&mut self, key: Key, verdict: bool) {
        if self.capacity == 0 {
            return;
        }
        if self.current.len() >= self.capacity {
            self.previous = std::mem::take(&mut self.current);
        }
        self.current.insert(key, verdict);
    }

    fn len(&self) -> usize {
        self.current.len() + self.previous.len()
    }
}

thread_local! {
    static MEMO: RefCell<GenCache> = RefCell::new(GenCache::default());
}

/// The canonical form of one side: α-renamed apart and head predicate
/// normalized (containment ignores head predicate names, so `p1(X) :- …`
/// and `q1(A) :- …` share an entry whenever their bodies α-match).
fn canonical_key(q: &ConjunctiveQuery) -> Rule {
    let mut r = q.to_rule();
    r.head.pred = Symbol::new("_memo_q");
    r.canonicalize()
}

/// Decides `q1 ⊆ q2` through the memo: answers from cache when the
/// canonical pair has been decided before on this thread, otherwise
/// computes via [`cq_contained`] and records the verdict.
///
/// With [`engine::EngineOptions::memo_capacity`] `== 0` this is exactly
/// `cq_contained` (no key construction, no cache access).
pub fn cq_contained_memo(q1: &ConjunctiveQuery, q2: &ConjunctiveQuery) -> bool {
    // One work unit per containment question asked through the memo (hits
    // and misses both — the canonicalization alone is real work).
    qc_guard::trip(qc_guard::stage::MEMO, 1);
    let opts = engine::current();
    let capacity = opts.memo_capacity;
    if capacity == 0 {
        return cq_contained(q1, q2);
    }
    // Adaptive tier gate: canonicalizing both sides and hashing the key
    // costs more than re-deciding a near-trivial containment question.
    if opts.adaptive && q1.subgoals.len() + q2.subgoals.len() < opts.tier_memo_size {
        return cq_contained(q1, q2);
    }
    let key = (canonical_key(q1), canonical_key(q2));
    let cached = MEMO.with(|m| {
        let mut cache = m.borrow_mut();
        cache.capacity = capacity;
        cache.lookup(&key)
    });
    if let Some(verdict) = cached {
        qc_obs::count(qc_obs::Counter::MemoHits, 1);
        return verdict;
    }
    qc_obs::count(qc_obs::Counter::MemoMisses, 1);
    // Decide outside the borrow (the check can be deep and may itself
    // consult the memo through nested engine calls).
    let verdict = cq_contained(q1, q2);
    MEMO.with(|m| m.borrow_mut().store(key, verdict));
    verdict
}

/// Empties this thread's memo (fresh counter baselines between bench
/// scenarios).
pub fn clear() {
    MEMO.with(|m| *m.borrow_mut() = GenCache::default());
}

/// Number of resident verdicts (both generations) on this thread.
pub fn resident() -> usize {
    MEMO.with(|m| m.borrow().len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineOptions;
    use qc_datalog::parse_query;
    use std::sync::Arc;

    fn q(s: &str) -> ConjunctiveQuery {
        parse_query(s).unwrap()
    }

    #[test]
    fn memo_agrees_with_direct_check() {
        let pairs = [
            ("q(X) :- r(X, Y).", "q(A) :- r(A, B)."),
            ("q(X) :- r(X, X).", "q(A) :- r(A, B)."),
            ("q(X) :- r(X, Y).", "q(A) :- r(A, A)."),
            ("q(X) :- r(X, 10).", "q(A) :- r(A, B)."),
            ("q(X) :- r(X, Y), Y < 5.", "q(A) :- r(A, B)."),
        ];
        for (a, b) in pairs {
            let (qa, qb) = (q(a), q(b));
            // Tiering off so these 1-atom pairs actually go through the
            // cache (the adaptive tier would decide them directly).
            let opts = EngineOptions::sequential().with_adaptive(false);
            let direct = cq_contained(&qa, &qb);
            let memoized = engine::with_options(opts, || cq_contained_memo(&qa, &qb));
            assert_eq!(direct, memoized, "{a} ⊆ {b}");
            // Second ask hits the cache and still agrees.
            let again = engine::with_options(opts, || cq_contained_memo(&qa, &qb));
            assert_eq!(direct, again, "{a} ⊆ {b} (cached)");
        }
    }

    #[test]
    fn alpha_equivalent_pairs_share_an_entry() {
        clear();
        let rec = Arc::new(qc_obs::PipelineRecorder::new());
        engine::with_options(EngineOptions::sequential().with_adaptive(false), || {
            let _g = qc_obs::install(rec.clone());
            assert!(cq_contained_memo(
                &q("q(X) :- e(X, Y), e(Y, Z)."),
                &q("q(U) :- e(U, V).")
            ));
            // α-renamed and head-renamed variant of the same question.
            assert!(cq_contained_memo(
                &q("p(A) :- e(A, B), e(B, C)."),
                &q("r(M) :- e(M, N).")
            ));
        });
        assert_eq!(rec.counters().get(qc_obs::Counter::MemoMisses), 1);
        assert_eq!(rec.counters().get(qc_obs::Counter::MemoHits), 1);
        clear();
    }

    #[test]
    fn zero_capacity_bypasses_cache() {
        clear();
        let rec = Arc::new(qc_obs::PipelineRecorder::new());
        engine::with_options(EngineOptions::naive(), || {
            let _g = qc_obs::install(rec.clone());
            assert!(cq_contained_memo(
                &q("q(X) :- r(X, X)."),
                &q("q(A) :- r(A, B).")
            ));
        });
        assert_eq!(rec.counters().get(qc_obs::Counter::MemoHits), 0);
        assert_eq!(rec.counters().get(qc_obs::Counter::MemoMisses), 0);
        assert_eq!(resident(), 0);
    }

    #[test]
    fn adaptive_tier_bypasses_memo_for_tiny_questions() {
        clear();
        let rec = Arc::new(qc_obs::PipelineRecorder::new());
        engine::with_options(EngineOptions::sequential(), || {
            let _g = qc_obs::install(rec.clone());
            // 1 + 1 subgoals < DEFAULT_TIER_MEMO_SIZE: decided directly.
            assert!(cq_contained_memo(
                &q("q(X) :- r(X, X)."),
                &q("q(A) :- r(A, B).")
            ));
        });
        assert_eq!(rec.counters().get(qc_obs::Counter::MemoHits), 0);
        assert_eq!(rec.counters().get(qc_obs::Counter::MemoMisses), 0);
        assert_eq!(resident(), 0);
        clear();
    }

    #[test]
    fn capacity_bound_holds() {
        clear();
        // Tiering off: the 1-atom probe pairs below would otherwise bypass
        // the memo entirely.
        let opts = EngineOptions {
            memo_capacity: 8,
            ..EngineOptions::sequential().with_adaptive(false)
        };
        engine::with_options(opts, || {
            for i in 0..100 {
                let a = q(&format!("q(X) :- r{i}(X, Y)."));
                let b = q(&format!("q(A) :- r{i}(A, B)."));
                cq_contained_memo(&a, &b);
            }
        });
        assert!(resident() <= 16, "resident = {}", resident());
        clear();
    }
}
