//! Differential tests for the engine configurations: the optimized paths
//! (atom reordering, bucketed homomorphism search, containment memo,
//! parallel fan-out) must agree with the order-naïve reference path on
//! random inputs, for every knob combination the engine exposes.
//!
//! The oracle is [`qc_containment::EngineOptions::naive`] — sequential,
//! linear-scan homomorphism search, no memo — which reproduces the
//! pre-optimization engine bit-for-bit. Every other configuration is an
//! implementation of the same mathematical functions, so the verdicts
//! (and, for evaluation, the answer *sets*) must be identical.

use proptest::prelude::*;
use qc_containment::datalog_ucq::{datalog_contained_in_ucq, FixpointBudget};
use qc_containment::{cq_contained, cq_contained_memo, engine, ucq_contained, EngineOptions};
use qc_datalog::eval::{answers, EvalOptions};
use qc_datalog::{parse_program, Atom, ConjunctiveQuery, Database, Program, Symbol, Term, Ucq};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The configurations under test, paired with the naïve oracle: the
/// optimized engine pinned to one thread, and the optimized engine fanned
/// out over four workers.
fn configs() -> [(&'static str, EngineOptions); 2] {
    [
        ("sequential", EngineOptions::sequential()),
        ("parallel4", EngineOptions::sequential().with_parallelism(4)),
    ]
}

/// A random small comparison-free CQ over binary predicates (mirrors the
/// generator in `properties.rs`).
fn random_cq(rng: &mut StdRng, head_arity: usize) -> ConjunctiveQuery {
    let natoms = rng.gen_range(1..=3);
    let nvars = rng.gen_range(1..=4u32);
    let term = |rng: &mut StdRng| -> Term {
        if rng.gen_bool(0.2) {
            Term::int(rng.gen_range(0..2))
        } else {
            Term::var(format!("V{}", rng.gen_range(0..nvars)))
        }
    };
    let mut subgoals = Vec::new();
    for _ in 0..natoms {
        let p = rng.gen_range(0..2);
        subgoals.push(Atom::new(format!("p{p}"), vec![term(rng), term(rng)]));
    }
    let body_vars: Vec<_> = subgoals.iter().flat_map(|a| a.vars()).collect();
    let head_args: Vec<Term> = (0..head_arity)
        .map(|_| match body_vars.first() {
            Some(_) => Term::Var(body_vars[rng.gen_range(0..body_vars.len())]),
            None => Term::int(0),
        })
        .collect();
    ConjunctiveQuery::new(Atom::new("q", head_args), subgoals, Vec::new())
}

/// A random nonrecursive layered program with answer predicate `q`
/// (mirrors the generator in `properties.rs`).
fn random_layered_program(rng: &mut StdRng) -> Program {
    let mut src = String::new();
    let q_atoms = rng.gen_range(1..=2);
    let mut body = Vec::new();
    for _ in 0..q_atoms {
        let h = rng.gen_range(0..2);
        body.push(format!(
            "h{h}(V{}, V{})",
            rng.gen_range(0..3),
            rng.gen_range(0..3)
        ));
    }
    src.push_str(&format!("q(V0) :- {}.\n", body.join(", ")));
    for h in 0..2 {
        for _ in 0..rng.gen_range(1..=2) {
            let p = rng.gen_range(0..2);
            match rng.gen_range(0..3) {
                0 => src.push_str(&format!("h{h}(A, B) :- p{p}(A, B).\n")),
                1 => src.push_str(&format!("h{h}(A, B) :- p{p}(B, A).\n")),
                _ => src.push_str(&format!("h{h}(A, A) :- p{p}(A, C).\n")),
            }
        }
    }
    parse_program(&src).expect("generated program parses")
}

/// A random database over the binary EDB predicates `p0`/`p1`.
fn random_db(rng: &mut StdRng) -> Database {
    let mut db = Database::new();
    for p in 0..2 {
        for _ in 0..rng.gen_range(0..8) {
            db.insert(
                format!("p{p}"),
                vec![
                    Term::int(rng.gen_range(0..3)),
                    Term::int(rng.gen_range(0..3)),
                ],
            );
        }
    }
    db
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn cq_containment_agrees_across_engines(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let q1 = random_cq(&mut rng, 1);
        let q2 = random_cq(&mut rng, 1);
        let oracle = engine::with_options(EngineOptions::naive(), || cq_contained(&q1, &q2));
        for (name, opts) in configs() {
            let got = engine::with_options(opts, || cq_contained(&q1, &q2));
            prop_assert_eq!(oracle, got, "{}: q1: {} q2: {}", name, q1, q2);
            // The memoized entry point must agree too — ask twice so the
            // second answer comes from the cache.
            let memo1 = engine::with_options(opts, || cq_contained_memo(&q1, &q2));
            let memo2 = engine::with_options(opts, || cq_contained_memo(&q1, &q2));
            prop_assert_eq!(oracle, memo1, "{} (memo): q1: {} q2: {}", name, q1, q2);
            prop_assert_eq!(oracle, memo2, "{} (cached): q1: {} q2: {}", name, q1, q2);
        }
    }

    #[test]
    fn direct_tier_counters_match_naive_oracle(seed in any::<u64>()) {
        // The adaptive direct tier is a drop-in replacement for the naïve
        // kernel: below the tier threshold it must do exactly the same
        // work, counter for counter, not just reach the same verdict.
        // (The bucketed tier above the threshold legitimately explores
        // fewer nodes; this pins the small-instance path to zero drift.)
        let mut rng = StdRng::seed_from_u64(seed);
        let q1 = random_cq(&mut rng, 1);
        let q2 = random_cq(&mut rng, 1);
        let observe = |opts: EngineOptions| {
            let rec = std::sync::Arc::new(qc_obs::PipelineRecorder::new());
            let verdict = {
                let _g = qc_obs::install(rec.clone());
                engine::with_options(opts, || cq_contained(&q1, &q2))
            };
            let c = rec.counters();
            (
                verdict,
                c.get(qc_obs::Counter::HomSearchNodes),
                c.get(qc_obs::Counter::HomMappingsFound),
                c.get(qc_obs::Counter::HomCandidatesPruned),
            )
        };
        let naive = observe(EngineOptions::naive());
        let direct = observe(EngineOptions::sequential());
        prop_assert_eq!(naive, direct, "q1: {} q2: {}", q1, q2);
    }

    #[test]
    fn ucq_containment_agrees_across_engines(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let u1 = Ucq::new((0..3).map(|_| random_cq(&mut rng, 1)).collect()).unwrap();
        let u2 = Ucq::new((0..3).map(|_| random_cq(&mut rng, 1)).collect()).unwrap();
        let oracle = engine::with_options(EngineOptions::naive(), || ucq_contained(&u1, &u2));
        for (name, opts) in configs() {
            let got = engine::with_options(opts, || ucq_contained(&u1, &u2));
            prop_assert_eq!(oracle, got, "{}: u1: {} u2: {}", name, u1, u2);
        }
    }

    #[test]
    fn datalog_ucq_fixpoint_agrees_across_engines(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let p = random_layered_program(&mut rng);
        // Include a redundant (subsumed) disjunct from time to time so the
        // memoized pre-pass actually fires.
        let mut targets: Vec<ConjunctiveQuery> = (0..2).map(|_| random_cq(&mut rng, 1)).collect();
        if rng.gen_bool(0.5) {
            targets.push(targets[0].clone());
        }
        let u2 = Ucq::new(targets).expect("same heads");
        let ans = Symbol::new("q");
        let budget = FixpointBudget::default();
        let oracle = engine::with_options(EngineOptions::naive(), || {
            datalog_contained_in_ucq(&p, &ans, &u2, &budget)
        })
        .unwrap();
        for (name, opts) in configs() {
            let got = engine::with_options(opts, || {
                datalog_contained_in_ucq(&p, &ans, &u2, &budget)
            })
            .unwrap();
            prop_assert_eq!(oracle, got, "{}: program:\n{}\ntarget:\n{}", name, p, u2);
        }
    }

    #[test]
    fn reordered_evaluation_agrees_with_textual_order(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let p = random_layered_program(&mut rng);
        let db = random_db(&mut rng);
        let ans = Symbol::new("q");
        let textual = EvalOptions {
            reorder: false,
            ..EvalOptions::default()
        };
        // The generator can emit unsafe rules (head variable not bound in
        // the body); both engines must agree on rejecting those too.
        let a_textual = match answers(&p, &db, &ans, &textual) {
            Ok(r) => r,
            Err(e) => {
                let e2 = answers(&p, &db, &ans, &EvalOptions::default()).unwrap_err();
                prop_assert_eq!(format!("{e:?}"), format!("{e2:?}"), "program:\n{}", p);
                return Ok(());
            }
        };
        let a_ordered = answers(&p, &db, &ans, &EvalOptions::default()).unwrap();
        // Reordering may change derivation (hence insertion) order; the
        // answer *sets* must match.
        let mut t_textual = a_textual.tuples().to_vec();
        let mut t_ordered = a_ordered.tuples().to_vec();
        t_textual.sort();
        t_ordered.sort();
        prop_assert_eq!(t_textual, t_ordered, "program:\n{}", p);
    }
}
