//! Property tests for the containment procedures: the type fixpoint
//! against unfolding, containment laws, and soundness on evaluation.

use proptest::prelude::*;
use qc_containment::datalog_ucq::{datalog_contained_in_ucq, FixpointBudget};
use qc_containment::uniform::uniformly_contained;
use qc_containment::{cq_contained, ucq_contained};
use qc_datalog::eval::{answers, EvalOptions};
use qc_datalog::{parse_program, Atom, ConjunctiveQuery, Database, Program, Symbol, Term, Ucq};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A random small comparison-free CQ over binary predicates.
fn random_cq(rng: &mut StdRng, head_arity: usize) -> ConjunctiveQuery {
    let natoms = rng.gen_range(1..=3);
    let nvars = rng.gen_range(1..=4u32);
    let term = |rng: &mut StdRng| -> Term {
        if rng.gen_bool(0.2) {
            Term::int(rng.gen_range(0..2))
        } else {
            Term::var(format!("V{}", rng.gen_range(0..nvars)))
        }
    };
    let mut subgoals = Vec::new();
    for _ in 0..natoms {
        let p = rng.gen_range(0..2);
        subgoals.push(Atom::new(format!("p{p}"), vec![term(rng), term(rng)]));
    }
    let body_vars: Vec<_> = subgoals.iter().flat_map(|a| a.vars()).collect();
    let head_args: Vec<Term> = (0..head_arity)
        .map(|_| match body_vars.first() {
            Some(_) => Term::Var(body_vars[rng.gen_range(0..body_vars.len())]),
            None => Term::int(0),
        })
        .collect();
    ConjunctiveQuery::new(Atom::new("q", head_args), subgoals, Vec::new())
}

/// A random nonrecursive layered program with answer predicate `q`.
fn random_layered_program(rng: &mut StdRng) -> Program {
    // q over helpers h0/h1, helpers over EDB p0/p1.
    let mut src = String::new();
    let q_atoms = rng.gen_range(1..=2);
    let mut body = Vec::new();
    for _ in 0..q_atoms {
        let h = rng.gen_range(0..2);
        body.push(format!(
            "h{h}(V{}, V{})",
            rng.gen_range(0..3),
            rng.gen_range(0..3)
        ));
    }
    src.push_str(&format!("q(V0) :- {}.\n", body.join(", ")));
    for h in 0..2 {
        for _ in 0..rng.gen_range(1..=2) {
            let p = rng.gen_range(0..2);
            // Safe rule shapes only.
            match rng.gen_range(0..3) {
                0 => src.push_str(&format!("h{h}(A, B) :- p{p}(A, B).\n")),
                1 => src.push_str(&format!("h{h}(A, B) :- p{p}(B, A).\n")),
                _ => src.push_str(&format!("h{h}(A, A) :- p{p}(A, C).\n")),
            }
        }
    }
    parse_program(&src).expect("generated program parses")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn type_fixpoint_equals_unfold_then_ucq(seed in any::<u64>()) {
        // On nonrecursive programs, the Chaudhuri–Vardi fixpoint must
        // agree with unfold + Sagiv–Yannakakis.
        let mut rng = StdRng::seed_from_u64(seed);
        let p = random_layered_program(&mut rng);
        let targets: Vec<ConjunctiveQuery> =
            (0..2).map(|_| random_cq(&mut rng, 1)).collect();
        let u2 = Ucq::new(targets).expect("same heads");
        let ans = Symbol::new("q");
        let via_fixpoint =
            datalog_contained_in_ucq(&p, &ans, &u2, &FixpointBudget::default()).unwrap();
        let unfolded = p.unfold(&ans).unwrap();
        let via_unfold = ucq_contained(&unfolded, &u2);
        prop_assert_eq!(via_fixpoint, via_unfold, "program:\n{}\ntarget:\n{}", p, u2);
    }

    #[test]
    fn containment_implies_answer_subset(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let q1 = random_cq(&mut rng, 1);
        let q2 = random_cq(&mut rng, 1);
        let contained = cq_contained(&q1, &q2);
        if !contained {
            return Ok(());
        }
        for _ in 0..4 {
            let mut db = Database::new();
            for p in 0..2 {
                for _ in 0..rng.gen_range(0..6) {
                    db.insert(
                        format!("p{p}"),
                        vec![Term::int(rng.gen_range(0..3)), Term::int(rng.gen_range(0..3))],
                    );
                }
            }
            let a1 = answers(&Program::new(vec![q1.to_rule()]), &db, &Symbol::new("q"), &EvalOptions::default()).unwrap();
            let a2 = answers(&Program::new(vec![q2.to_rule()]), &db, &Symbol::new("q"), &EvalOptions::default()).unwrap();
            for t in a1.tuples() {
                prop_assert!(a2.contains(&t), "containment violated on {t:?}\nq1: {}\nq2: {}", q1, q2);
            }
        }
    }

    #[test]
    fn containment_is_a_preorder(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let qs: Vec<ConjunctiveQuery> = (0..3).map(|_| random_cq(&mut rng, 1)).collect();
        // Reflexive.
        for q in &qs {
            prop_assert!(cq_contained(q, q));
        }
        // Transitive.
        for a in &qs {
            for b in &qs {
                for c in &qs {
                    if cq_contained(a, b) && cq_contained(b, c) {
                        prop_assert!(cq_contained(a, c), "a: {} b: {} c: {}", a, b, c);
                    }
                }
            }
        }
    }

    #[test]
    fn uniform_containment_is_sound(seed in any::<u64>()) {
        // ⊆ᵤ implies ordinary containment: check via the fixpoint on
        // nonrecursive programs sharing the vocabulary.
        let mut rng = StdRng::seed_from_u64(seed);
        let p1 = random_layered_program(&mut rng);
        let p2 = random_layered_program(&mut rng);
        if uniformly_contained(&p1, &p2, &EvalOptions::default()).unwrap_or(false) {
            let ans = Symbol::new("q");
            let u2 = p2.unfold(&ans).unwrap();
            let ordinary = datalog_contained_in_ucq(&p1, &ans, &u2, &FixpointBudget::default()).unwrap();
            prop_assert!(ordinary, "uniform holds but ordinary fails\np1:\n{}\np2:\n{}", p1, p2);
        }
    }

    #[test]
    fn klug_test_is_sound_and_complete_on_grid(seed in any::<u64>()) {
        // For small comparison queries, every linearization of the terms is
        // realized by some assignment over a half-integer grid spanning the
        // constants. So: if the dense-order test says NOT contained, a
        // witness database must exist on the grid; if it says contained,
        // no grid assignment may violate it. Together these check both
        // soundness and completeness of the implementation.
        use qc_datalog::Comparison;
        use qc_datalog::CompOp;
        let mut rng = StdRng::seed_from_u64(seed);

        let mk = |rng: &mut StdRng| -> ConjunctiveQuery {
            let ops = [CompOp::Lt, CompOp::Le, CompOp::Gt, CompOp::Ge, CompOp::Ne];
            let vars = ["X", "Y"];
            let mut comps = Vec::new();
            for _ in 0..rng.gen_range(0..=2) {
                let lhs = Term::var(vars[rng.gen_range(0..2)]);
                let rhs = if rng.gen_bool(0.5) {
                    Term::int(rng.gen_range(0..3))
                } else {
                    Term::var(vars[rng.gen_range(0..2)])
                };
                comps.push(Comparison::new(lhs, ops[rng.gen_range(0..ops.len())], rhs));
            }
            ConjunctiveQuery::new(
                Atom::new("q", vec![Term::var("X")]),
                vec![Atom::new("e", vec![Term::var("X"), Term::var("Y")])],
                comps,
            )
        };
        let q1 = mk(&mut rng);
        let q2 = mk(&mut rng);
        let contained = cq_contained(&q1, &q2);

        // Grid: half-integers from -1 to 3.5 (covers constants 0..2 with
        // room on both sides and between every pair).
        let grid: Vec<qc_constraints::Rat> = (-2..8)
            .map(|n| qc_constraints::Rat::new(n, 2))
            .collect();
        let q2_prog = Program::new(vec![q2.to_rule()]);
        let opts = EvalOptions::default();
        let mut found_witness = false;
        for &x in &grid {
            for &y in &grid {
                // Does the assignment satisfy q1's comparisons?
                let assign = |t: &Term| -> Term {
                    match t {
                        Term::Var(v) if v.name() == "X" => Term::Const(qc_datalog::Const::Num(x)),
                        Term::Var(v) if v.name() == "Y" => Term::Const(qc_datalog::Const::Num(y)),
                        other => other.clone(),
                    }
                };
                let sat = q1.comparisons.iter().all(|c| {
                    Comparison::new(assign(&c.lhs), c.op, assign(&c.rhs))
                        .eval_ground()
                        .unwrap_or(false)
                });
                if !sat {
                    continue;
                }
                let mut db = Database::new();
                db.insert("e", vec![
                    Term::Const(qc_datalog::Const::Num(x)),
                    Term::Const(qc_datalog::Const::Num(y)),
                ]);
                let ans = answers(&q2_prog, &db, &Symbol::new("q"), &opts).unwrap();
                let head = vec![Term::Const(qc_datalog::Const::Num(x))];
                let covered = ans.contains(&head);
                if contained {
                    prop_assert!(
                        covered,
                        "SOUNDNESS: contained, but ({x}, {y}) is a counterexample\nq1: {}\nq2: {}",
                        q1, q2
                    );
                } else if !covered {
                    found_witness = true;
                }
            }
        }
        if !contained {
            // Either a witness exists on the grid, or q1 is unsatisfiable
            // over it (then non-containment must come from somewhere the
            // grid can't see — impossible for this vocabulary).
            prop_assert!(
                found_witness,
                "COMPLETENESS: not contained, but no grid witness\nq1: {}\nq2: {}",
                q1, q2
            );
        }
    }

    #[test]
    fn ucq_containment_respects_union_laws(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = random_cq(&mut rng, 1);
        let b = random_cq(&mut rng, 1);
        let ab = Ucq::new(vec![a.clone(), b.clone()]).unwrap();
        // Each disjunct is contained in the union.
        prop_assert!(ucq_contained(&Ucq::single(a.clone()), &ab));
        prop_assert!(ucq_contained(&Ucq::single(b.clone()), &ab));
        // The union is contained in a single disjunct iff both are.
        let in_a = ucq_contained(&ab, &Ucq::single(a.clone()));
        prop_assert_eq!(in_a, cq_contained(&b, &a), "a: {} b: {}", a, b);
    }
}
