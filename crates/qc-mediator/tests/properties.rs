//! Property tests for the data-integration layer: certain-answer laws,
//! binding-pattern invariants, and reduction correctness.

use proptest::prelude::*;
use qc_datalog::eval::EvalOptions;
use qc_datalog::{Database, Symbol, Term};
use qc_mediator::binding::reachable_certain_answers;
use qc_mediator::certain::certain_answers;
use qc_mediator::reductions::{random_cnf3, thm33_reduction};
use qc_mediator::relative::relatively_contained;
use qc_mediator::schema::LavSetting;
use qc_mediator::workloads::{query_program, random_instance, random_query, random_views, Shape};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn s(n: &str) -> Symbol {
    Symbol::new(n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn certain_answers_monotone_in_instance(seed in any::<u64>()) {
        // More source tuples can only add certain answers (open world).
        let mut rng = StdRng::seed_from_u64(seed);
        let q = random_query(Shape::Chain, 1 + (seed as usize) % 2, 2, &mut rng);
        let views = random_views(3, 2, &mut rng);
        let p = query_program(&q);
        let small = random_instance(&views, 2, 3, &mut rng);
        let mut big = small.clone();
        big.merge(&random_instance(&views, 2, 3, &mut rng));
        let opts = EvalOptions::default();
        let a_small = certain_answers(&p, &s("q"), &views, &small, &opts).unwrap();
        let a_big = certain_answers(&p, &s("q"), &views, &big, &opts).unwrap();
        for t in a_small.tuples() {
            prop_assert!(a_big.contains(&t), "lost {t:?} when the instance grew");
        }
    }

    #[test]
    fn certain_answers_shrink_when_sources_disappear(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let q = random_query(Shape::Chain, 1 + (seed as usize) % 2, 2, &mut rng);
        let views = random_views(3, 2, &mut rng);
        let fewer = LavSetting { sources: views.sources[..2].to_vec() };
        let p = query_program(&q);
        let inst = random_instance(&views, 3, 3, &mut rng);
        let opts = EvalOptions::default();
        let all = certain_answers(&p, &s("q"), &views, &inst, &opts).unwrap();
        let some = certain_answers(&p, &s("q"), &fewer, &inst, &opts).unwrap();
        for t in some.tuples() {
            prop_assert!(all.contains(&t), "answer {t:?} appeared from nowhere");
        }
    }

    #[test]
    fn reachable_is_a_subset_of_certain(seed in any::<u64>()) {
        // Access restrictions can only lose answers (Def 4.3 refines 2.1).
        let mut rng = StdRng::seed_from_u64(seed);
        let mut views = LavSetting::parse(&[
            "V0(A, B) :- p0(A, B).",
            "V1(A, B) :- p1(A, B).",
        ]).unwrap();
        let q = random_query(Shape::Chain, 1 + (seed as usize) % 2, 2, &mut rng);
        // Give the query a constant seed so dom is nonempty: replace the
        // head-start variable... simpler: pose the query as-is; dom may be
        // empty, which only strengthens the subset claim.
        let p = query_program(&q);
        let mut db = Database::new();
        for v in ["V0", "V1"] {
            for _ in 0..4 {
                db.insert(v, vec![
                    Term::sym(format!("c{}", rng.gen_range(0..3))),
                    Term::sym(format!("c{}", rng.gen_range(0..3))),
                ]);
            }
        }
        let opts = EvalOptions::default();
        let unrestricted = certain_answers(&p, &s("q"), &views, &db, &opts).unwrap();
        views.sources[0] = views.sources[0].clone().with_adornment("bf");
        views.sources[1] = views.sources[1].clone().with_adornment("bf");
        let restricted = reachable_certain_answers(&p, &s("q"), &views, &db, &opts).unwrap();
        for t in restricted.tuples() {
            prop_assert!(
                unrestricted.contains(&t),
                "reachable answer {t:?} is not certain\nq: {}", q
            );
        }
    }

    #[test]
    fn extra_adornments_only_add_reachable_answers(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut one = LavSetting::parse(&["V(A, B) :- p0(A, B)."]).unwrap();
        one.sources[0] = one.sources[0].clone().with_adornment("bf");
        let mut two = LavSetting::parse(&["V(A, B) :- p0(A, B)."]).unwrap();
        two.sources[0] = two.sources[0].clone().with_adornment("bf").with_adornment("fb");
        // A query seeded with a constant.
        let p = qc_datalog::parse_program("q(Y) :- p0(c0, X), p0(X, Y).").unwrap();
        let mut db = Database::new();
        for _ in 0..6 {
            db.insert("V", vec![
                Term::sym(format!("c{}", rng.gen_range(0..3))),
                Term::sym(format!("c{}", rng.gen_range(0..3))),
            ]);
        }
        let opts = EvalOptions::default();
        let fewer = reachable_certain_answers(&p, &s("q"), &one, &db, &opts).unwrap();
        let more = reachable_certain_answers(&p, &s("q"), &two, &db, &opts).unwrap();
        for t in fewer.tuples() {
            prop_assert!(more.contains(&t), "second access path lost {t:?}");
        }
    }

    #[test]
    fn bp_decision_sound_on_instances(seed in any::<u64>()) {
        // If Thm 4.2 decides Q1 ⊑_V,B Q2, then on sampled instances the
        // reachable certain answers must be contained.
        let mut rng = StdRng::seed_from_u64(seed);
        let mut views = LavSetting::parse(&[
            "Va(A, B) :- p0(A, B).",
            "Vb(A, B) :- p1(A, B).",
        ]).unwrap();
        if rng.gen_bool(0.5) {
            views.sources[0] = views.sources[0].clone().with_adornment("bf");
        }
        if rng.gen_bool(0.5) {
            views.sources[1] = views.sources[1].clone().with_adornment("bf");
        }
        // Queries seeded with the shared constant c0 so dom is nonempty.
        let bodies = [
            "p0(c0, X)",
            "p0(c0, X), p1(X, Y)",
            "p0(c0, X), p0(X, Y)",
            "p1(c0, X)",
        ];
        let b1 = bodies[rng.gen_range(0..bodies.len())];
        let b2 = bodies[rng.gen_range(0..bodies.len())];
        let q1 = qc_datalog::parse_program(&format!("q(X) :- {b1}.")).unwrap();
        let q2 = qc_datalog::parse_program(&format!("q(X) :- {b2}.")).unwrap();
        let decided = match qc_mediator::relative::relatively_contained_bp(
            &q1, &s("q"), &q2, &s("q"), &views,
        ) {
            Ok(d) => d,
            Err(_) => return Ok(()), // e.g. constants precondition
        };
        if decided {
            for _ in 0..3 {
                let mut db = Database::new();
                for v in ["Va", "Vb"] {
                    for _ in 0..rng.gen_range(0..5) {
                        db.insert(v, vec![
                            Term::sym(format!("c{}", rng.gen_range(0..3))),
                            Term::sym(format!("c{}", rng.gen_range(0..3))),
                        ]);
                    }
                }
                let opts = EvalOptions::default();
                let a1 = reachable_certain_answers(&q1, &s("q"), &views, &db, &opts).unwrap();
                let a2 = reachable_certain_answers(&q2, &s("q"), &views, &db, &opts).unwrap();
                for t in a1.tuples() {
                    prop_assert!(
                        a2.contains(&t),
                        "BP-decided contained but {t:?} escapes\nq1: {}\nq2: {}\nadorned: {:?}",
                        q1, q2,
                        views.sources.iter().map(|v| v.adornments.len()).collect::<Vec<_>>()
                    );
                }
            }
        }
    }

    #[test]
    fn thm33_reduction_matches_brute_force(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let f = random_cnf3(2, 1 + (seed as usize) % 2, 1 + (seed as usize) % 3, &mut rng);
        let inst = thm33_reduction(&f);
        let got = relatively_contained(
            &inst.contained,
            &inst.contained_ans,
            &inst.container,
            &inst.container_ans,
            &inst.views,
        ).unwrap();
        prop_assert_eq!(got, f.is_forall_exists_satisfiable(), "{:?}", f);
    }
}

// ---------------------------------------------------------------------------
// Catalog delta maintenance (live churn)
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Delta-maintained compiled artifacts (inverse-rule blocks and
    /// MiniCon view preparations) must be bit-for-bit what a from-scratch
    /// compile of the final setting produces, for any delta sequence —
    /// and the rewritings built from them must agree with the stock
    /// MiniCon path.
    #[test]
    fn catalog_delta_maintenance_matches_from_scratch(seed in any::<u64>()) {
        use qc_mediator::catalog::{CatalogDelta, CatalogOp, CompiledCatalog};
        use qc_mediator::minicon::{minicon_rewritings, minicon_rewritings_catalog};
        use qc_mediator::schema::SourceDescription;

        let mut rng = StdRng::seed_from_u64(seed);
        let views = random_views(3, 2, &mut rng);
        let mut cat = CompiledCatalog::compile(&views);
        let mut fresh = 0usize;
        for step in 1..=(1 + (seed as usize) % 5) {
            let names: Vec<String> = cat
                .views()
                .sources
                .iter()
                .map(|s| s.name.to_string())
                .collect();
            let op = match rng.gen_range(0..3u8) {
                0 => {
                    fresh += 1;
                    let p = rng.gen_range(0..2u8);
                    CatalogOp::Add(
                        SourceDescription::parse(&format!(
                            "w{fresh}(A, C) :- p{p}(A, B), p{}(B, C).",
                            rng.gen_range(0..2u8)
                        ))
                        .unwrap(),
                    )
                }
                1 if !names.is_empty() => {
                    CatalogOp::Remove(names[rng.gen_range(0..names.len())].clone())
                }
                _ if !names.is_empty() => {
                    let name = &names[rng.gen_range(0..names.len())];
                    CatalogOp::Replace(
                        SourceDescription::parse(&format!(
                            "{name}(A, B) :- p{}(A, B).",
                            rng.gen_range(0..2u8)
                        ))
                        .unwrap(),
                    )
                }
                _ => {
                    fresh += 1;
                    CatalogOp::Add(
                        SourceDescription::parse(&format!("w{fresh}(A, B) :- p0(A, B)."))
                            .unwrap(),
                    )
                }
            };
            cat.apply(&CatalogDelta::one(op), step as u64).unwrap();
        }

        // Oracle: recompile the final setting from scratch; versions are
        // maintenance metadata, so align them before comparing.
        let mut oracle = CompiledCatalog::compile(cat.views());
        let names: Vec<String> = cat
            .entries()
            .iter()
            .map(|e| e.source.name.to_string())
            .collect();
        let versions: Vec<u64> = cat.entries().iter().map(|e| e.version).collect();
        oracle.restore_versions(&names, &versions);
        prop_assert_eq!(
            format!("{:?}", cat),
            format!("{:?}", oracle),
            "delta-maintained catalog diverged from from-scratch compile"
        );

        // And the compiled rewritings agree with the stock path.
        let q = random_query(Shape::Chain, 1 + (seed as usize) % 2, 2, &mut rng);
        let from_cat = minicon_rewritings_catalog(&q, &cat);
        let from_oracle = minicon_rewritings_catalog(&q, &oracle);
        prop_assert_eq!(
            format!("{from_cat}"),
            format!("{from_oracle}"),
            "rewritings over maintained vs rebuilt catalog differ"
        );
        let stock = minicon_rewritings(&q, cat.views());
        prop_assert!(
            qc_containment::cq::ucq_equivalent(&from_cat, &stock),
            "catalog rewritings {} not equivalent to stock {}",
            from_cat,
            stock
        );
    }
}
