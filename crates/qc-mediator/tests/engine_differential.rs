//! Differential tests for the rewriting pipelines across engine
//! configurations: MiniCon and the Theorem 3.1 enumeration must produce
//! *identical* plans (not merely equivalent ones — candidate order is
//! preserved through the batched parallel checks) under the naïve
//! reference engine, the optimized sequential engine, and the parallel
//! fan-out.

use proptest::prelude::*;
use qc_containment::{engine, EngineOptions};
use qc_mediator::enumerate::{enumerated_plan, EnumerationLimits};
use qc_mediator::minicon::minicon_rewritings;
use qc_mediator::workloads::{random_query, random_views, Shape};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn configs() -> [(&'static str, EngineOptions); 2] {
    [
        ("sequential", EngineOptions::sequential()),
        ("parallel4", EngineOptions::sequential().with_parallelism(4)),
    ]
}

/// Canonicalizes each disjunct (in order). Fresh variables minted during
/// rewriting carry globally unique gensym names, so two runs produce
/// α-equivalent but not textually identical plans; canonicalization
/// erases exactly that difference while preserving disjunct order and
/// structure.
fn canon(u: &qc_datalog::Ucq) -> Vec<qc_datalog::Rule> {
    u.disjuncts
        .iter()
        .map(|d| d.to_rule().canonicalize())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn minicon_plan_is_identical_across_engines(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let shape = if rng.gen_bool(0.5) { Shape::Chain } else { Shape::Star };
        let q = random_query(shape, rng.gen_range(1..=3), 2, &mut rng);
        let views = random_views(rng.gen_range(1..=3), 2, &mut rng);
        let oracle = engine::with_options(EngineOptions::naive(), || {
            minicon_rewritings(&q, &views)
        });
        for (name, opts) in configs() {
            let got = engine::with_options(opts, || minicon_rewritings(&q, &views));
            prop_assert_eq!(
                canon(&oracle),
                canon(&got),
                "{}: query: {}\noracle: {}\ngot: {}",
                name, q, &oracle, &got
            );
        }
    }

    #[test]
    fn enumerated_plan_is_identical_across_engines(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        // Keep the instance tiny: the enumeration is exponential.
        let q = random_query(Shape::Chain, rng.gen_range(1..=2), 2, &mut rng);
        let views = random_views(rng.gen_range(1..=2), 2, &mut rng);
        let limits = EnumerationLimits {
            max_candidates: 200_000,
            ..EnumerationLimits::default()
        };
        let oracle = engine::with_options(EngineOptions::naive(), || {
            enumerated_plan(&q, &views, &limits)
        });
        for (name, opts) in configs() {
            let got = engine::with_options(opts, || enumerated_plan(&q, &views, &limits));
            match (&oracle, &got) {
                (Some(a), Some(b)) => prop_assert_eq!(
                    canon(a),
                    canon(b),
                    "{}: query: {}\noracle: {}\ngot: {}",
                    name, q, a, b
                ),
                (None, None) => {}
                _ => prop_assert!(
                    false,
                    "{}: budget verdicts differ for query {}",
                    name, q
                ),
            }
        }
    }
}
