//! Differential tests pinning the compiled relational-algebra engine to
//! the tuple-at-a-time oracle.
//!
//! The RA engine (`qc-datalog/src/ra.rs`) compiles rules once and
//! evaluates batches; the tuple engine interprets rule bodies per
//! candidate tuple. They must be *indistinguishable* from the outside:
//! identical fixpoints on random stratified programs, identical certain
//! answers through the full inverse-rule pipeline, with and without the
//! magic-sets rewrite. Any divergence is a bug in the RA compiler, the
//! semi-naive delta driver, or the magic rewrite — never acceptable
//! "optimization slack".

use proptest::prelude::*;
use qc_datalog::eval::{answers, evaluate, EvalEngine, EvalOptions};
use qc_datalog::{Database, Program, Symbol, Term};
use qc_mediator::binding::reachable_certain_answers;
use qc_mediator::certain::certain_answers;
use qc_mediator::workloads::{random_query, random_views, Shape};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn ra() -> EvalOptions {
    EvalOptions {
        engine: EvalEngine::Ra,
        ..EvalOptions::default()
    }
}

fn ra_no_magic() -> EvalOptions {
    EvalOptions {
        magic_sets: false,
        ..ra()
    }
}

fn tuple() -> EvalOptions {
    EvalOptions {
        engine: EvalEngine::Tuple,
        ..EvalOptions::default()
    }
}

/// Random positive (hence stratified) function-free program: a pool of
/// recursive and non-recursive shapes over EDB `e`/`s`, sometimes with
/// comparisons and constant-seeded goal rules.
fn random_program(rng: &mut StdRng) -> Program {
    let shapes = [
        // Linear transitive closure, left and right recursive.
        "t(X, Y) :- e(X, Y). t(X, Z) :- t(X, Y), e(Y, Z). q(Y) :- t(0, Y).",
        "t(X, Y) :- e(X, Y). t(X, Z) :- e(X, Y), t(Y, Z). q(Y) :- t(0, Y).",
        // Nonlinear closure.
        "t(X, Y) :- e(X, Y). t(X, Z) :- t(X, Y), t(Y, Z). q(Y) :- t(0, Y).",
        // Mutual recursion with unary state.
        "a(X) :- s(X). b(Y) :- a(X), e(X, Y). a(Y) :- b(X), e(X, Y). q(X) :- a(X).",
        // Comparisons filter the recursion frontier.
        "t(X, Y) :- e(X, Y), X < Y. t(X, Z) :- t(X, Y), e(Y, Z), Y != Z. q(Y) :- t(0, Y).",
        // Same-generation: classic magic-sets stress shape.
        "sg(X, X) :- s(X). sg(X, Y) :- e(U, X), sg(U, V), e(V, Y). q(Y) :- sg(0, Y).",
        // Multi-join nonrecursive layer above a recursive core.
        "t(X, Y) :- e(X, Y). t(X, Z) :- t(X, Y), e(Y, Z). \
         q(X, Z) :- t(X, Y), t(Y, Z), s(Y).",
    ];
    qc_datalog::parse_program(shapes[rng.gen_range(0..shapes.len())]).unwrap()
}

fn random_db(rng: &mut StdRng) -> Database {
    let mut db = Database::new();
    let dom = rng.gen_range(2..7);
    for _ in 0..rng.gen_range(0..16) {
        db.insert(
            "e",
            vec![
                Term::int(rng.gen_range(0..dom)),
                Term::int(rng.gen_range(0..dom)),
            ],
        );
    }
    for _ in 0..rng.gen_range(0..5) {
        db.insert("s", vec![Term::int(rng.gen_range(0..dom))]);
    }
    db
}

fn tuple_set(rel: &qc_datalog::Relation) -> std::collections::BTreeSet<Vec<Term>> {
    rel.tuples().into_iter().collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn ra_fixpoint_equals_tuple_fixpoint(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let prog = random_program(&mut rng);
        let db = random_db(&mut rng);
        let r = evaluate(&prog, &db, &ra()).unwrap();
        let t = evaluate(&prog, &db, &tuple()).unwrap();
        prop_assert_eq!(r.facts(), t.facts());
    }

    #[test]
    fn ra_answers_equal_tuple_answers_with_and_without_magic(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let prog = random_program(&mut rng);
        let db = random_db(&mut rng);
        let q = Symbol::new("q");
        let magic = answers(&prog, &db, &q, &ra()).unwrap();
        let plain = answers(&prog, &db, &q, &ra_no_magic()).unwrap();
        let oracle = answers(&prog, &db, &q, &tuple()).unwrap();
        prop_assert_eq!(tuple_set(&magic), tuple_set(&oracle));
        prop_assert_eq!(tuple_set(&plain), tuple_set(&oracle));
    }

    #[test]
    fn certain_answer_verdicts_match_the_oracle(seed in any::<u64>()) {
        // Full inverse-rule pipeline: random LAV views, random query,
        // random source instance. The RA engine evaluates the unfolded
        // plan (Skolem heads included — fn-term construction and
        // filtering must agree with the tuple engine bit for bit).
        let mut rng = StdRng::seed_from_u64(seed);
        let views = random_views(rng.gen_range(1..4), 3, &mut rng);
        let cq = random_query(Shape::Chain, rng.gen_range(1..3), 3, &mut rng);
        let query = Program::new(vec![cq.to_rule()]);
        let answer = cq.head.pred;
        let mut db = Database::new();
        for v in 0..3 {
            for _ in 0..rng.gen_range(0..5) {
                db.insert(
                    format!("v{v}"),
                    vec![Term::int(rng.gen_range(0..4)), Term::int(rng.gen_range(0..4))],
                );
            }
        }
        let r = certain_answers(&query, &answer, &views, &db, &ra());
        let t = certain_answers(&query, &answer, &views, &db, &tuple());
        match (r, t) {
            (Ok(r), Ok(t)) => prop_assert_eq!(tuple_set(&r), tuple_set(&t)),
            (r, t) => prop_assert_eq!(r.is_err(), t.is_err()),
        }
    }

    #[test]
    fn reachable_certain_answer_verdicts_match_the_oracle(seed in any::<u64>()) {
        // Binding-pattern route (the E9 workload): recursive reachability
        // plans through capability-limited sources.
        let mut rng = StdRng::seed_from_u64(seed);
        let views = random_views(rng.gen_range(1..4), 3, &mut rng);
        let cq = random_query(Shape::Chain, rng.gen_range(1..3), 3, &mut rng);
        let query = Program::new(vec![cq.to_rule()]);
        let answer = cq.head.pred;
        let mut db = Database::new();
        for v in 0..3 {
            for _ in 0..rng.gen_range(0..5) {
                db.insert(
                    format!("v{v}"),
                    vec![Term::int(rng.gen_range(0..4)), Term::int(rng.gen_range(0..4))],
                );
            }
        }
        let r = reachable_certain_answers(&query, &answer, &views, &db, &ra());
        let t = reachable_certain_answers(&query, &answer, &views, &db, &tuple());
        match (r, t) {
            (Ok(r), Ok(t)) => prop_assert_eq!(tuple_set(&r), tuple_set(&t)),
            (r, t) => prop_assert_eq!(r.is_err(), t.is_err()),
        }
    }

    #[test]
    fn adaptive_tier_is_transparent(seed in any::<u64>()) {
        // Whatever the router picks must be invisible in the result.
        let mut rng = StdRng::seed_from_u64(seed);
        let prog = random_program(&mut rng);
        let db = random_db(&mut rng);
        let adaptive = evaluate(&prog, &db, &EvalOptions::default()).unwrap();
        let oracle = evaluate(&prog, &db, &tuple()).unwrap();
        prop_assert_eq!(adaptive.facts(), oracle.facts());
    }
}
