//! Certain answers (Definition 2.1 of the paper).
//!
//! Plan-based computation: evaluate the maximally-contained plan over the
//! source instance, discarding answers that carry Skolem terms (labelled
//! nulls) — equivalently, evaluate the function-term-eliminated plan.
//!
//! A brute-force oracle enumerates every database over a bounded active
//! domain and intersects query answers across the consistent ones. It is
//! exponential, but it is the *semantics itself*, so it validates the
//! plan-based route, and it handles the cases where no datalog plan can
//! exist: closed-world (complete) sources — reproducing Example 5 — and
//! queries with comparisons (both co-NP-hard per §2.3).

use std::collections::BTreeSet;
use std::fmt;

use qc_datalog::eval::{answers, EvalError, EvalOptions};
use qc_datalog::{Database, Program, Relation, Symbol, Term, Tuple};

use crate::fn_elim::{eliminate_function_terms, FnElimError};
use crate::inverse_rules::max_contained_plan;
use crate::schema::LavSetting;

/// Open- vs closed-world interpretation of sources (§2.2: incomplete vs
/// complete sources; \[1\] calls these OWA/CWA).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum World {
    /// Sources are incomplete: `v(I) ⊆ view(D)` (the paper's default).
    Open,
    /// Per-source as declared: complete sources require `v(I) = view(D)`.
    AsDeclared,
}

/// Errors computing certain answers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CertainError {
    /// Plan evaluation failed.
    Eval(EvalError),
    /// Function-term elimination failed.
    FnElim(FnElimError),
}

impl fmt::Display for CertainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CertainError::Eval(e) => write!(f, "evaluation: {e}"),
            CertainError::FnElim(e) => write!(f, "function-term elimination: {e}"),
        }
    }
}

impl CertainError {
    /// Returns the underlying [`qc_guard::ResourceError`] when this error
    /// records resource exhaustion (budget, deadline, or cancellation) in
    /// any wrapped stage, mirroring `RelativeError::resource`.
    pub fn resource(&self) -> Option<&qc_guard::ResourceError> {
        match self {
            CertainError::Eval(EvalError::Resource(e)) => Some(e),
            CertainError::FnElim(FnElimError::Resource(e)) => Some(e),
            _ => None,
        }
    }
}

impl std::error::Error for CertainError {}

impl From<EvalError> for CertainError {
    fn from(e: EvalError) -> CertainError {
        CertainError::Eval(e)
    }
}

impl From<FnElimError> for CertainError {
    fn from(e: FnElimError) -> CertainError {
        CertainError::FnElim(e)
    }
}

/// Computes the certain answers of a comparison-free datalog query over
/// incomplete conjunctive sources by evaluating the maximally-contained
/// plan (inverse rules, \[15\]) and discarding null-carrying tuples.
pub fn certain_answers(
    query: &Program,
    answer: &Symbol,
    views: &LavSetting,
    instance: &Database,
    opts: &EvalOptions,
) -> Result<Relation, CertainError> {
    let plan = max_contained_plan(query, views);
    let rel = answers(&plan, instance, answer, opts)?;
    Ok(rel
        .tuples()
        .iter()
        .filter(|t| t.iter().all(|v| !v.has_function()))
        .cloned()
        .collect())
}

/// Same as [`certain_answers`], but through function-term elimination
/// (the two routes agree; both are exercised by tests and by ablation
/// experiment E9).
pub fn certain_answers_via_elimination(
    query: &Program,
    answer: &Symbol,
    views: &LavSetting,
    instance: &Database,
    opts: &EvalOptions,
) -> Result<Relation, CertainError> {
    let plan = eliminate_function_terms(&max_contained_plan(query, views))?;
    Ok(answers(&plan, instance, answer, opts)?)
}

/// Explains a certain answer: the *source facts* that support it, traced
/// through the maximally-contained plan's derivation. Returns `None` if
/// the tuple is not a certain answer over the instance.
///
/// ```
/// use qc_datalog::eval::EvalOptions;
/// use qc_datalog::{parse_program, Database, Symbol, Term};
/// use qc_mediator::certain::certain_answer_support;
/// use qc_mediator::schema::LavSetting;
///
/// let views = LavSetting::parse(&["V(A, B) :- p(A, B)."]).unwrap();
/// let q = parse_program("q(X) :- p(X, Y).").unwrap();
/// let db = Database::parse("V(a, b). V(c, d).").unwrap();
/// let support = certain_answer_support(
///     &q, &Symbol::new("q"), &views, &db,
///     &vec![Term::sym("a")], &EvalOptions::default(),
/// ).unwrap().expect("is a certain answer");
/// assert_eq!(support, vec![(Symbol::new("V"), vec![Term::sym("a"), Term::sym("b")])]);
/// ```
pub fn certain_answer_support(
    query: &Program,
    answer: &Symbol,
    views: &LavSetting,
    instance: &Database,
    tuple: &Tuple,
    opts: &EvalOptions,
) -> Result<Option<Vec<(Symbol, Tuple)>>, CertainError> {
    let plan = eliminate_function_terms(&max_contained_plan(query, views))?;
    let (idb, trace) = qc_datalog::eval::evaluate_traced(&plan, instance, opts)?;
    if !idb.relation(answer).is_some_and(|r| r.contains(tuple)) {
        return Ok(None);
    }
    Ok(Some(trace.support(answer, tuple)))
}

/// The brute-force certain-answer oracle: enumerates all databases over a
/// fixed active domain.
#[derive(Debug, Clone)]
pub struct BruteForceOracle {
    /// The active domain to build candidate databases over.
    pub domain: Vec<Term>,
    /// World assumption.
    pub world: World,
    /// Upper bound on candidate facts (enumeration is `2^facts`).
    pub max_facts: usize,
}

/// Result of the brute-force oracle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OracleAnswer {
    /// The set of certain answers (over the oracle's domain).
    Certain(BTreeSet<Tuple>),
    /// No database over the domain is consistent with the instance, so
    /// every tuple is (vacuously) certain.
    Inconsistent,
}

impl BruteForceOracle {
    /// Creates an oracle over a domain of symbolic constants `a`, `b`, ….
    pub fn with_symbols(names: &[&str], world: World) -> BruteForceOracle {
        BruteForceOracle {
            domain: names.iter().map(|n| Term::sym(*n)).collect(),
            world,
            max_facts: 24,
        }
    }

    /// Creates an oracle over a domain of integer constants — needed when
    /// the query or views carry comparison predicates (the co-NP-hard
    /// case of §2.3, where no polynomial plan exists in general).
    pub fn with_ints(values: &[i64], world: World) -> BruteForceOracle {
        BruteForceOracle {
            domain: values.iter().map(|&n| Term::int(n)).collect(),
            world,
            max_facts: 24,
        }
    }

    /// Computes certain answers of `query` w.r.t. the source `instance`,
    /// quantifying over every database `D` over the domain with
    /// `I ⊆ V(D)` (open) or `I = V(D)` for complete sources.
    ///
    /// # Panics
    /// Panics if the candidate-fact count exceeds `max_facts`.
    pub fn certain(
        &self,
        query: &Program,
        answer: &Symbol,
        views: &LavSetting,
        instance: &Database,
        opts: &EvalOptions,
    ) -> Result<OracleAnswer, CertainError> {
        // Mediated-schema relations: the EDB predicates of the view
        // definitions (plus those of the query).
        let mut preds: Vec<(Symbol, usize)> = Vec::new();
        let note = |pred: &Symbol, arity: usize, preds: &mut Vec<(Symbol, usize)>| {
            if !preds.iter().any(|(p, _)| p == pred) {
                preds.push((*pred, arity));
            }
        };
        for s in &views.sources {
            for a in &s.view.subgoals {
                note(&a.pred, a.arity(), &mut preds);
            }
        }
        for r in query.rules() {
            for a in r.body_atoms() {
                if !query.idb_preds().contains(&a.pred) {
                    note(&a.pred, a.arity(), &mut preds);
                }
            }
        }

        // Candidate facts: all tuples over the domain for each relation.
        let mut facts: Vec<(Symbol, Tuple)> = Vec::new();
        for (pred, arity) in &preds {
            let mut tuple = vec![0usize; *arity];
            loop {
                facts.push((
                    *pred,
                    tuple.iter().map(|&i| self.domain[i].clone()).collect(),
                ));
                // Odometer increment.
                let mut k = 0;
                loop {
                    if k == *arity {
                        break;
                    }
                    tuple[k] += 1;
                    if tuple[k] < self.domain.len() {
                        break;
                    }
                    tuple[k] = 0;
                    k += 1;
                }
                if k == *arity {
                    break;
                }
            }
        }
        assert!(
            facts.len() <= self.max_facts,
            "brute-force oracle over {} candidate facts (limit {})",
            facts.len(),
            self.max_facts
        );

        let mut certain: Option<BTreeSet<Tuple>> = None;
        let view_prog = Program::new(
            views
                .sources
                .iter()
                .map(|s| s.view.to_rule())
                .collect::<Vec<_>>(),
        );
        for mask in 0u64..(1u64 << facts.len()) {
            let mut db = Database::new();
            for (i, (pred, tuple)) in facts.iter().enumerate() {
                if mask & (1 << i) != 0 {
                    db.insert(pred.as_str(), tuple.clone());
                }
            }
            // Consistency: evaluate the view definitions over D.
            let views_of_d = qc_datalog::eval::evaluate(&view_prog, &db, opts)?;
            let mut consistent = true;
            for s in &views.sources {
                let derived = views_of_d.relation(&s.name).cloned().unwrap_or_default();
                let stored = instance.relation(&s.name).cloned().unwrap_or_default();
                let sound = stored.tuples().iter().all(|t| derived.contains(t));
                let closed = match (self.world, s.complete) {
                    (World::AsDeclared, true) => {
                        derived.tuples().iter().all(|t| stored.contains(t))
                    }
                    _ => true,
                };
                if !(sound && closed) {
                    consistent = false;
                    break;
                }
            }
            if !consistent {
                continue;
            }
            let ans = answers(query, &db, answer, opts)?;
            let set: BTreeSet<Tuple> = ans.tuples().iter().cloned().collect();
            certain = Some(match certain {
                None => set,
                Some(prev) => prev.intersection(&set).cloned().collect(),
            });
            if let Some(c) = &certain {
                if c.is_empty() {
                    break; // cannot shrink further
                }
            }
        }
        Ok(match certain {
            Some(set) => OracleAnswer::Certain(set),
            None => OracleAnswer::Inconsistent,
        })
    }
}

/// Searches for a source instance over the oracle's domain witnessing
/// `certain(Q1, I) ⊄ certain(Q2, I)` — a counterexample to relative
/// containment under the oracle's world assumption.
///
/// Relative containment under **complete** sources is an open problem in
/// the paper (§6); this bounded search is the tool the paper's own
/// Example 5 argument uses implicitly: it finds `I = {v1(a), v2(b)}` for
/// that example. Returns the witness instance and tuple, or `None` if no
/// counterexample exists over the domain (which decides nothing).
///
/// Exponential twice over (instances × databases); keep domains tiny.
pub fn find_containment_counterexample(
    oracle: &BruteForceOracle,
    q1: &Program,
    ans1: &Symbol,
    q2: &Program,
    ans2: &Symbol,
    views: &LavSetting,
    opts: &EvalOptions,
) -> Result<Option<(Database, Tuple)>, CertainError> {
    // Candidate source tuples over the domain.
    let mut slots: Vec<(Symbol, Tuple)> = Vec::new();
    for s in &views.sources {
        let arity = s.view.head.arity();
        let mut idx = vec![0usize; arity];
        loop {
            slots.push((
                s.name,
                idx.iter().map(|&i| oracle.domain[i].clone()).collect(),
            ));
            let mut k = 0;
            loop {
                if k == arity {
                    break;
                }
                idx[k] += 1;
                if idx[k] < oracle.domain.len() {
                    break;
                }
                idx[k] = 0;
                k += 1;
            }
            if k == arity {
                break;
            }
        }
    }
    assert!(
        slots.len() <= 16,
        "counterexample search over {} candidate source tuples (limit 16)",
        slots.len()
    );
    for mask in 0u64..(1u64 << slots.len()) {
        let mut instance = Database::new();
        for (i, (pred, tuple)) in slots.iter().enumerate() {
            if mask & (1 << i) != 0 {
                instance.insert(pred.as_str(), tuple.clone());
            }
        }
        let c1 = oracle.certain(q1, ans1, views, &instance, opts)?;
        let c2 = oracle.certain(q2, ans2, views, &instance, opts)?;
        match (c1, c2) {
            (OracleAnswer::Certain(a1), OracleAnswer::Certain(a2)) => {
                if let Some(t) = a1.difference(&a2).next() {
                    return Ok(Some((instance, t.clone())));
                }
            }
            // Q1's side vacuously certain of *everything* (no consistent
            // database) while Q2's side is finite: a violation; witness
            // with an arbitrary domain tuple of the answer arity.
            (OracleAnswer::Inconsistent, OracleAnswer::Certain(a2)) => {
                let arity = q1
                    .rules_for(ans1)
                    .next()
                    .map(|r| r.head.arity())
                    .unwrap_or(0);
                let t: Tuple = (0..arity).map(|_| oracle.domain[0].clone()).collect();
                if !a2.contains(&t) {
                    return Ok(Some((instance, t)));
                }
            }
            // Q2's side is vacuously everything: never a violation.
            (_, OracleAnswer::Inconsistent) => {}
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::example1_sources;
    use qc_datalog::parse_program;

    fn opts() -> EvalOptions {
        EvalOptions::default()
    }

    #[test]
    fn example1_certain_answers_of_q1_and_q2_agree() {
        // "the two queries return the same certain answers."
        let views = example1_sources();
        let q1 = parse_program(
            "q1(CarNo, Review) :- CarDesc(CarNo, Model, C, Y), Review(Model, Review, Rating).",
        )
        .unwrap();
        let q2 = parse_program(
            "q2(CarNo, Review) :- CarDesc(CarNo, Model, C, Y), Review(Model, Review, 10).",
        )
        .unwrap();
        let db = Database::parse(
            "RedCars(c1, corolla, 1988). AntiqueCars(c2, ford, 1960).
             CarAndDriver(corolla, nice). CarAndDriver(ford, classic).",
        )
        .unwrap();
        let a1 = certain_answers(&q1, &Symbol::new("q1"), &views, &db, &opts()).unwrap();
        let a2 = certain_answers(&q2, &Symbol::new("q2"), &views, &db, &opts()).unwrap();
        assert_eq!(a1.len(), 2);
        let t1: BTreeSet<_> = a1.tuples().iter().cloned().collect();
        let t2: BTreeSet<_> = a2.tuples().iter().cloned().collect();
        assert_eq!(t1, t2);
        // Q3 only returns the antique car's review.
        let q3 = parse_program(
            "q3(CarNo, Review) :- CarDesc(CarNo, Model, C, Y), Review(Model, Review, 10), Y < 1970.",
        )
        .unwrap();
        let a3 = certain_answers(&q3, &Symbol::new("q3"), &views, &db, &opts()).unwrap();
        assert_eq!(a3.len(), 1);
        assert!(a3.contains(&vec![Term::sym("c2"), Term::sym("classic")]));
    }

    #[test]
    fn plan_route_and_elimination_route_agree() {
        let views = example1_sources();
        let q1 = parse_program(
            "q1(CarNo, Review) :- CarDesc(CarNo, Model, C, Y), Review(Model, Review, Rating).",
        )
        .unwrap();
        let db = Database::parse(
            "RedCars(c1, corolla, 1988). CarAndDriver(corolla, nice). AntiqueCars(c2, ford, 1950).",
        )
        .unwrap();
        let a = certain_answers(&q1, &Symbol::new("q1"), &views, &db, &opts()).unwrap();
        let b =
            certain_answers_via_elimination(&q1, &Symbol::new("q1"), &views, &db, &opts()).unwrap();
        let sa: BTreeSet<_> = a.tuples().iter().cloned().collect();
        let sb: BTreeSet<_> = b.tuples().iter().cloned().collect();
        assert_eq!(sa, sb);
    }

    #[test]
    fn nulls_are_not_answers() {
        // A query projecting the Skolemized color column has no certain
        // answers from AntiqueCars.
        let views = example1_sources();
        let q = parse_program("q(Color) :- CarDesc(CarNo, Model, Color, Y).").unwrap();
        let db = Database::parse("AntiqueCars(c2, ford, 1950).").unwrap();
        let a = certain_answers(&q, &Symbol::new("q"), &views, &db, &opts()).unwrap();
        assert!(a.is_empty());
        // But from RedCars the color is known.
        let db2 = Database::parse("RedCars(c1, corolla, 1988).").unwrap();
        let a2 = certain_answers(&q, &Symbol::new("q"), &views, &db2, &opts()).unwrap();
        assert!(a2.contains(&vec![Term::sym("red")]));
    }

    #[test]
    fn example5_open_world() {
        // Example 5: under incomplete sources, Q1 has no certain answers
        // from v1, v2 alone.
        let views = LavSetting::parse(&[
            "v1(X) :- p(X, Y).",
            "v2(Y) :- p(X, Y).",
            "v3(X, Y) :- p(X, Y), r(X, Y).",
        ])
        .unwrap();
        let q1 = parse_program("q1(X, Y) :- p(X, Y).").unwrap();
        let db = Database::parse("v1(a). v2(b).").unwrap();
        let oracle = BruteForceOracle::with_symbols(&["a", "b"], World::Open);
        let got = oracle
            .certain(&q1, &Symbol::new("q1"), &views, &db, &opts())
            .unwrap();
        assert_eq!(got, OracleAnswer::Certain(BTreeSet::new()));
        // Plan-based route agrees.
        let plan_based = certain_answers(&q1, &Symbol::new("q1"), &views, &db, &opts()).unwrap();
        assert!(plan_based.is_empty());
    }

    #[test]
    fn example5_closed_world() {
        // With v1 and v2 complete, p(a, b) is forced: (a, b) is certain
        // for Q1, while Q2 (over r) still has none.
        let mut views = LavSetting::parse(&[
            "v1(X) :- p(X, Y).",
            "v2(Y) :- p(X, Y).",
            "v3(X, Y) :- p(X, Y), r(X, Y).",
        ])
        .unwrap();
        views.sources[0].complete = true;
        views.sources[1].complete = true;
        let db = Database::parse("v1(a). v2(b).").unwrap();
        let oracle = BruteForceOracle::with_symbols(&["a", "b"], World::AsDeclared);
        let q1 = parse_program("q1(X, Y) :- p(X, Y).").unwrap();
        let got = oracle
            .certain(&q1, &Symbol::new("q1"), &views, &db, &opts())
            .unwrap();
        let expected: BTreeSet<Tuple> =
            [vec![Term::sym("a"), Term::sym("b")]].into_iter().collect();
        assert_eq!(got, OracleAnswer::Certain(expected));
        let q2 = parse_program("q2(X, Y) :- r(X, Y).").unwrap();
        let got2 = oracle
            .certain(&q2, &Symbol::new("q2"), &views, &db, &opts())
            .unwrap();
        assert_eq!(got2, OracleAnswer::Certain(BTreeSet::new()));
    }

    #[test]
    fn oracle_agrees_with_plan_on_small_cases() {
        let views = LavSetting::parse(&["v(X, Y) :- p(X, Y)."]).unwrap();
        let q = parse_program("q(X) :- p(X, Y).").unwrap();
        let db = Database::parse("v(a, b).").unwrap();
        let oracle = BruteForceOracle::with_symbols(&["a", "b"], World::Open);
        let got = oracle
            .certain(&q, &Symbol::new("q"), &views, &db, &opts())
            .unwrap();
        let plan = certain_answers(&q, &Symbol::new("q"), &views, &db, &opts()).unwrap();
        let plan_set: BTreeSet<Tuple> = plan.tuples().iter().cloned().collect();
        assert_eq!(got, OracleAnswer::Certain(plan_set));
    }

    #[test]
    fn recursive_queries_have_certain_answers() {
        // "the maximally-contained query plan of a recursive query is
        // recursive" (§2.3) — and evaluates fine.
        let views = LavSetting::parse(&["Flights(A, B) :- flight(A, B)."]).unwrap();
        let q = parse_program(
            "reach(X, Y) :- flight(X, Y).
             reach(X, Z) :- reach(X, Y), flight(Y, Z).",
        )
        .unwrap();
        let db =
            Database::parse("Flights(sea, sfo). Flights(sfo, jfk). Flights(jfk, lhr).").unwrap();
        let ans = certain_answers(&q, &Symbol::new("reach"), &views, &db, &opts()).unwrap();
        assert_eq!(ans.len(), 6);
        assert!(ans.contains(&vec![Term::sym("sea"), Term::sym("lhr")]));
        // With a projecting view the join column is a null: only direct
        // flights are certain... actually not even those (the column is
        // projected). Departures-only view:
        let vp = LavSetting::parse(&["Departures(A) :- flight(A, B)."]).unwrap();
        let ans = certain_answers(&q, &Symbol::new("reach"), &vp, &db, &opts()).unwrap();
        assert!(ans.is_empty());
    }

    #[test]
    fn numeric_oracle_handles_comparison_queries() {
        // View guarantees Year < 1970; the oracle (over a numeric domain)
        // confirms that a comparison query's certain answers respect it.
        let views = LavSetting::parse(&["Old(C, Y) :- car(C, Y), Y < 3."]).unwrap();
        let q = parse_program("q(C) :- car(C, Y), Y < 5.").unwrap();
        let db = Database::parse("Old(1, 2).").unwrap();
        let oracle = BruteForceOracle::with_ints(&[1, 2], World::Open);
        let got = oracle
            .certain(&q, &Symbol::new("q"), &views, &db, &opts())
            .unwrap();
        // car(1, 2) is forced (up to the domain); 2 < 5 holds, so 1 is
        // certain.
        let expected: BTreeSet<Tuple> = [vec![Term::int(1)]].into_iter().collect();
        assert_eq!(got, OracleAnswer::Certain(expected));
        // A query demanding Y < 2 is NOT certain: car(1, 2) suffices for
        // the source, and 2 < 2 fails.
        let q2 = parse_program("q2(C) :- car(C, Y), Y < 2.").unwrap();
        let got2 = oracle
            .certain(&q2, &Symbol::new("q2"), &views, &db, &opts())
            .unwrap();
        assert_eq!(got2, OracleAnswer::Certain(BTreeSet::new()));
    }

    #[test]
    fn inconsistent_instance_detected() {
        // A complete empty source contradicts a derived view tuple when
        // the *other* source forces p nonempty... simplest: complete v
        // with a stored tuple that the view cannot produce (v defined
        // over p with both columns equal).
        let mut views = LavSetting::parse(&["v(X, X) :- p(X, X)."]).unwrap();
        views.sources[0].complete = true;
        let q = parse_program("q(X) :- p(X, X).").unwrap();
        let db = Database::parse("v(a, b).").unwrap();
        let oracle = BruteForceOracle::with_symbols(&["a", "b"], World::AsDeclared);
        let got = oracle
            .certain(&q, &Symbol::new("q"), &views, &db, &opts())
            .unwrap();
        assert_eq!(got, OracleAnswer::Inconsistent);
    }
}
