//! A mutable, delta-maintained source catalog.
//!
//! The paper's data-integration setting assumes sources come and go
//! constantly; recomputing every compiled artifact from scratch on each
//! change throws away exactly the work the per-view structure of the
//! algorithms makes reusable:
//!
//! * **inverse rules** ([`crate::inverse_rules`]) are generated
//!   per source with no cross-view state, so the rules of an untouched
//!   view are byte-identical before and after a delta;
//! * **MiniCon** spends a large share of its per-call work renaming each
//!   view apart and classifying its variables as distinguished vs
//!   existential — both functions of the view alone.
//!
//! A [`CompiledCatalog`] caches both per view. [`CompiledCatalog::apply`]
//! recompiles only the views an op touches and stamps them with the new
//! catalog version; everything else is reused verbatim (counted by
//! `catalog_epoch_views_recompiled` / `catalog_epoch_views_reused`).
//! [`CompiledCatalog::compile`] is the from-scratch rebuild, kept as the
//! differential oracle: for any delta sequence, `apply` must land on
//! exactly the artifacts `compile` produces for the final setting (a
//! property test pins this).
//!
//! ## Deterministic renaming
//!
//! The stock MiniCon path renames views apart with a process-global
//! fresh-variable counter, so its variable names depend on process
//! history. Cached preparations must instead be *deterministic*: each
//! view's variables are renamed `v ↦ _C<view>_<v>`, which is injective
//! per view, collision-free across views (source names are unique in a
//! catalog), and stable across processes. The `_C` prefix marks the names
//! as machine-generated for `tidy_names`.

use std::collections::BTreeSet;
use std::fmt;

use qc_datalog::{ConjunctiveQuery, Program, Rule, Subst, Term, Var};

use crate::inverse_rules::inverse_rules_for_source;
use crate::schema::{LavSetting, SourceDescription};

/// One mutation of the catalog.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CatalogOp {
    /// Adds a new source (error if the name is already present). The
    /// source is appended, so plan/disjunct order for untouched inputs is
    /// unchanged.
    Add(SourceDescription),
    /// Removes the named source (error if absent).
    Remove(String),
    /// Replaces the named source's definition in place, preserving its
    /// catalog position (error if absent).
    Replace(SourceDescription),
}

impl CatalogOp {
    /// Parses one line of churn-script / REPL syntax:
    ///
    /// ```text
    /// add V(X) :- p(X, Y).
    /// rm V
    /// replace V(X) :- p(X, Y), r(Y).
    /// ```
    ///
    /// (`remove` is accepted as a synonym for `rm`.)
    pub fn parse(line: &str) -> Result<CatalogOp, CatalogError> {
        let line = line.trim();
        let (verb, rest) = line.split_once(char::is_whitespace).ok_or_else(|| {
            CatalogError::Parse(format!("catalog op needs an argument: {line:?}"))
        })?;
        let rest = rest.trim();
        match verb {
            "add" => Ok(CatalogOp::Add(SourceDescription::parse(rest).map_err(
                |e| CatalogError::Parse(format!("add: bad view definition {rest:?}: {e}")),
            )?)),
            "replace" => Ok(CatalogOp::Replace(SourceDescription::parse(rest).map_err(
                |e| CatalogError::Parse(format!("replace: bad view definition {rest:?}: {e}")),
            )?)),
            "rm" | "remove" => {
                if rest.is_empty() || rest.contains(char::is_whitespace) {
                    return Err(CatalogError::Parse(format!(
                        "rm expects a single view name, got {rest:?}"
                    )));
                }
                Ok(CatalogOp::Remove(rest.to_string()))
            }
            other => Err(CatalogError::Parse(format!(
                "unknown catalog op {other:?} (expected add/rm/replace)"
            ))),
        }
    }

    /// The view name the op targets.
    pub fn name(&self) -> &str {
        match self {
            CatalogOp::Add(s) | CatalogOp::Replace(s) => s.name.as_str(),
            CatalogOp::Remove(n) => n,
        }
    }
}

/// An ordered batch of catalog mutations, applied atomically: either every
/// op validates and the catalog moves to the new version, or nothing
/// changes.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CatalogDelta {
    /// The ops, applied in order (so `add V` followed by `replace V` in
    /// one delta is legal).
    pub ops: Vec<CatalogOp>,
}

impl CatalogDelta {
    /// A single-op delta.
    pub fn one(op: CatalogOp) -> CatalogDelta {
        CatalogDelta { ops: vec![op] }
    }
}

/// Why a delta (or one of its ops) was refused. Refusal is atomic: the
/// catalog is unchanged.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CatalogError {
    /// `add` named a view already in the catalog.
    Duplicate(String),
    /// `rm`/`replace` named a view not in the catalog.
    Unknown(String),
    /// Unparsable op syntax.
    Parse(String),
}

impl fmt::Display for CatalogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CatalogError::Duplicate(n) => write!(f, "view {n:?} already in the catalog"),
            CatalogError::Unknown(n) => write!(f, "no view {n:?} in the catalog"),
            CatalogError::Parse(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for CatalogError {}

/// What a [`CompiledCatalog::apply`] did: the invalidation keys and the
/// reuse accounting.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DeltaReport {
    /// Names of views recompiled (added/replaced) or removed.
    pub touched_views: Vec<String>,
    /// Every predicate whose meaning the delta may have changed: the
    /// touched views' exported names plus every mediated-schema predicate
    /// in their bodies (old *and* new body for a replace). Cached results
    /// whose request mentions none of these predicates are unaffected.
    pub touched_preds: BTreeSet<String>,
    /// Views recompiled by this delta.
    pub views_recompiled: usize,
    /// Views left untouched (artifacts reused verbatim).
    pub views_reused: usize,
}

/// A view renamed apart deterministically, with its variable
/// classification precomputed — everything MiniCon's MCD formation needs
/// that depends on the view alone.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PreparedView {
    /// The view definition under the `_C<view>_<v>` renaming.
    pub view: ConjunctiveQuery,
    /// Variables existential in the renamed view (body-only).
    pub existential: BTreeSet<Var>,
}

fn prepare_view(source: &SourceDescription) -> PreparedView {
    let mut sigma = Subst::new();
    for v in source.view.vars() {
        let fresh = Var::new(format!("_C{}_{}", source.name, v.name()));
        let bound = sigma.bind(v, Term::Var(fresh));
        debug_assert!(bound, "renaming to a fresh variable cannot fail");
    }
    let view = source.view.substitute(&sigma);
    let head_vars = view.head.vars();
    let existential = view
        .subgoals
        .iter()
        .flat_map(|a| a.vars())
        .filter(|v| !head_vars.contains(v))
        .collect();
    PreparedView { view, existential }
}

/// One source with its compiled artifacts and the catalog version that
/// last touched it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompiledView {
    /// The source description as registered.
    pub source: SourceDescription,
    /// Catalog version (serve-side: epoch) at which this view was last
    /// added or replaced. Folded into request fingerprints so a touched
    /// view invalidates exactly the requests that depend on it.
    pub version: u64,
    /// The view's inverse-rule block (identical to what
    /// [`crate::inverse_rules::inverse_rules_for_source`] returns).
    pub inverse: Vec<Rule>,
    /// The view's MiniCon preparation.
    pub prepared: PreparedView,
}

impl CompiledView {
    fn compile(source: SourceDescription, version: u64) -> CompiledView {
        let inverse = inverse_rules_for_source(&source);
        let prepared = prepare_view(&source);
        CompiledView {
            source,
            version,
            inverse,
            prepared,
        }
    }

    /// The predicates this view's presence can influence: its exported
    /// name plus its body predicates.
    pub fn pred_names(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        out.insert(self.source.name.to_string());
        for a in &self.source.view.subgoals {
            out.insert(a.pred.to_string());
        }
        out
    }
}

/// The compiled, versioned catalog: a [`LavSetting`] plus per-view cached
/// artifacts, maintained incrementally under [`CatalogOp`]s.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompiledCatalog {
    entries: Vec<CompiledView>,
    // Kept strictly in sync with `entries` (same sources, same order) so
    // the many APIs taking `&LavSetting` need no reconstruction.
    setting: LavSetting,
}

impl CompiledCatalog {
    /// Compiles every view of `views` from scratch at version 0 — the
    /// differential oracle for [`CompiledCatalog::apply`].
    pub fn compile(views: &LavSetting) -> CompiledCatalog {
        let entries = views
            .sources
            .iter()
            .map(|s| CompiledView::compile(s.clone(), 0))
            .collect();
        CompiledCatalog {
            entries,
            setting: views.clone(),
        }
    }

    /// The catalog as a plain LAV setting (entry order).
    pub fn views(&self) -> &LavSetting {
        &self.setting
    }

    /// The compiled per-view entries, in catalog order.
    pub fn entries(&self) -> &[CompiledView] {
        &self.entries
    }

    /// The full inverse-rule program, assembled from the cached per-view
    /// blocks. Bit-for-bit equal to
    /// [`crate::inverse_rules::inverse_rules`] on [`Self::views`], because
    /// inversion is per-view and the blocks are concatenated in catalog
    /// order.
    pub fn inverse_program(&self) -> Program {
        let mut out = Program::default();
        for e in &self.entries {
            for rule in &e.inverse {
                out.push(rule.clone());
            }
        }
        out
    }

    fn index_of(&self, name: &str) -> Option<usize> {
        self.entries.iter().position(|e| e.source.name == name)
    }

    /// Applies `delta` atomically, stamping every touched view with
    /// `version`. On error the catalog is unchanged.
    pub fn apply(
        &mut self,
        delta: &CatalogDelta,
        version: u64,
    ) -> Result<DeltaReport, CatalogError> {
        // Validate-then-commit on a scratch copy: op K's validity can
        // depend on ops before it, so simulate in order.
        let mut next = self.clone();
        let mut report = DeltaReport::default();
        for op in &delta.ops {
            match op {
                CatalogOp::Add(s) => {
                    if next.index_of(s.name.as_str()).is_some() {
                        return Err(CatalogError::Duplicate(s.name.to_string()));
                    }
                    let compiled = CompiledView::compile(s.clone(), version);
                    report.touched_preds.extend(compiled.pred_names());
                    report.touched_views.push(s.name.to_string());
                    next.setting.sources.push(s.clone());
                    next.entries.push(compiled);
                }
                CatalogOp::Remove(name) => {
                    let Some(ix) = next.index_of(name) else {
                        return Err(CatalogError::Unknown(name.clone()));
                    };
                    let removed = next.entries.remove(ix);
                    next.setting.sources.remove(ix);
                    report.touched_preds.extend(removed.pred_names());
                    report.touched_views.push(name.clone());
                }
                CatalogOp::Replace(s) => {
                    let Some(ix) = next.index_of(s.name.as_str()) else {
                        return Err(CatalogError::Unknown(s.name.to_string()));
                    };
                    let compiled = CompiledView::compile(s.clone(), version);
                    // Both the old and the new definition's footprint can
                    // be affected by the swap.
                    report.touched_preds.extend(next.entries[ix].pred_names());
                    report.touched_preds.extend(compiled.pred_names());
                    report.touched_views.push(s.name.to_string());
                    next.setting.sources[ix] = s.clone();
                    next.entries[ix] = compiled;
                }
            }
        }
        report.touched_views.sort();
        report.touched_views.dedup();
        report.views_recompiled = report.touched_views.len();
        report.views_reused = next
            .entries
            .iter()
            .filter(|e| {
                !report
                    .touched_views
                    .iter()
                    .any(|t| e.source.name.as_str() == t)
            })
            .count();
        *self = next;
        qc_obs::count(
            qc_obs::Counter::CatalogEpochViewsRecompiled,
            report.views_recompiled as u64,
        );
        qc_obs::count(
            qc_obs::Counter::CatalogEpochViewsReused,
            report.views_reused as u64,
        );
        Ok(report)
    }

    /// Stamps every view with `version` (used when a restarted process
    /// cannot prove its catalog matches the journaled one: everything is
    /// treated as freshly changed).
    pub fn set_all_versions(&mut self, version: u64) {
        for e in &mut self.entries {
            e.version = version;
        }
    }

    /// Restores per-view versions from a `(names, versions)` pair (a
    /// journaled epoch record). Names absent from the catalog are ignored;
    /// views absent from the record keep their current version.
    pub fn restore_versions(&mut self, names: &[String], versions: &[u64]) {
        for (name, v) in names.iter().zip(versions) {
            if let Some(ix) = self.index_of(name) {
                self.entries[ix].version = *v;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inverse_rules::inverse_rules;
    use crate::schema::example1_sources;

    fn op(line: &str) -> CatalogOp {
        CatalogOp::parse(line).unwrap()
    }

    #[test]
    fn parse_ops() {
        assert!(matches!(op("add V(X) :- p(X, Y)."), CatalogOp::Add(_)));
        assert!(matches!(op("  rm V "), CatalogOp::Remove(n) if n == "V"));
        assert!(matches!(op("remove V"), CatalogOp::Remove(_)));
        assert!(matches!(op("replace V(X) :- p(X)."), CatalogOp::Replace(_)));
        assert!(CatalogOp::parse("rm").is_err());
        assert!(CatalogOp::parse("rm two names").is_err());
        assert!(CatalogOp::parse("frobnicate V").is_err());
        assert!(CatalogOp::parse("add not a rule").is_err());
    }

    #[test]
    fn strict_errors_leave_catalog_unchanged() {
        let mut cat = CompiledCatalog::compile(&example1_sources());
        let before = cat.clone();
        let dup = CatalogDelta::one(op("add RedCars(C, M, Y) :- CarDesc(C, M, red, Y)."));
        assert!(matches!(
            cat.apply(&dup, 1),
            Err(CatalogError::Duplicate(_))
        ));
        let missing = CatalogDelta::one(op("rm NoSuchView"));
        assert!(matches!(
            cat.apply(&missing, 1),
            Err(CatalogError::Unknown(_))
        ));
        // A multi-op delta failing mid-way must not half-apply.
        let partial = CatalogDelta {
            ops: vec![op("add W(X) :- CarDesc(X, M, C, Y)."), op("rm NoSuchView")],
        };
        assert!(cat.apply(&partial, 1).is_err());
        assert_eq!(cat, before, "atomicity");
    }

    #[test]
    fn assembled_inverse_program_matches_plain_inverse_rules() {
        let cat = CompiledCatalog::compile(&example1_sources());
        assert_eq!(
            format!("{:?}", cat.inverse_program().rules()),
            format!("{:?}", inverse_rules(&example1_sources()).rules()),
        );
    }

    #[test]
    fn apply_touches_only_affected_views_and_reports_keys() {
        let mut cat = CompiledCatalog::compile(&example1_sources());
        let before_antique = cat.entries()[1].clone();
        let report = cat
            .apply(
                &CatalogDelta::one(op(
                    "replace RedCars(C, M, Y) :- CarDesc(C, M, red, Y), Review(M, R, 10).",
                )),
                7,
            )
            .unwrap();
        assert_eq!(report.touched_views, vec!["RedCars".to_string()]);
        assert_eq!(report.views_recompiled, 1);
        assert_eq!(report.views_reused, 2);
        assert!(report.touched_preds.contains("RedCars"));
        assert!(report.touched_preds.contains("CarDesc"));
        assert!(report.touched_preds.contains("Review"), "new body counts");
        // Untouched entries reused verbatim, version included.
        assert_eq!(cat.entries()[1], before_antique);
        assert_eq!(cat.entries()[0].version, 7);
        // The sync invariant: setting mirrors entries.
        assert_eq!(cat.views().sources.len(), cat.entries().len());
        for (s, e) in cat.views().sources.iter().zip(cat.entries()) {
            assert_eq!(format!("{s}"), format!("{}", e.source));
        }
    }

    #[test]
    fn delta_maintenance_matches_from_scratch_oracle() {
        // The differential oracle on a hand-picked sequence; the proptest
        // below generalizes to random sequences.
        let mut cat = CompiledCatalog::compile(&example1_sources());
        let script = [
            "add Cheap(M) :- Review(M, R, 1).",
            "rm AntiqueCars",
            "replace Cheap(M) :- Review(M, R, 2).",
            "add AntiqueCars(C, M, Y) :- CarDesc(C, M, Col, Y), Y < 1960.",
        ];
        for (i, line) in script.iter().enumerate() {
            cat.apply(&CatalogDelta::one(op(line)), (i + 1) as u64)
                .unwrap();
        }
        let mut oracle = CompiledCatalog::compile(cat.views());
        // Versions are maintenance metadata, not compiled artifacts:
        // align them before the bit-for-bit comparison.
        oracle.restore_versions(
            &cat.entries()
                .iter()
                .map(|e| e.source.name.to_string())
                .collect::<Vec<_>>(),
            &cat.entries().iter().map(|e| e.version).collect::<Vec<_>>(),
        );
        assert_eq!(format!("{cat:?}"), format!("{oracle:?}"));
    }
}
