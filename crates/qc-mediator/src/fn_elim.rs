//! Function-term elimination (\[15\] in the paper).
//!
//! Inverse-rule plans construct Skolem terms; \[15\] shows how to remove
//! them, yielding an equivalent plan over ordinary (function-free)
//! predicates — the step from Example 2's plan to Example 3's. We
//! implement the standard *pattern specialization*: abstract-interpret
//! which argument *shapes* each IDB predicate can derive (`plain` value vs
//! `f(…)` term, splicing the Skolem's arguments inline), specialize every
//! predicate per shape vector, and keep only all-plain answers — which is
//! also exactly the "discard answers containing function terms" rule of
//! certain-answer semantics (§2.3).
//!
//! Skolem terms produced by the inverse-rules algorithm never nest (their
//! arguments come from source tuples), so shapes are depth-1; nested
//! shapes are reported as an error.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use qc_datalog::{unify_terms_with, Atom, Literal, Program, Rule, Subst, Symbol, Term, VarGen};

/// Errors from [`eliminate_function_terms`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FnElimError {
    /// A derivable tuple carries a nested function term (`f(g(…))`) —
    /// cannot arise from inverse-rule plans.
    NestedFunctionTerms(String),
    /// A function term appeared in a comparison literal.
    FunctionTermInComparison(String),
    /// A resource limit tripped: the built-in specialization budget
    /// (stage `"fn_elim/rules"` — pattern explosion) or an installed
    /// [`qc_guard::Guard`] limit (stage [`qc_guard::stage::FN_ELIM`]).
    Resource(qc_guard::ResourceError),
}

impl fmt::Display for FnElimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FnElimError::NestedFunctionTerms(t) => {
                write!(f, "nested function term {t} (not an inverse-rule plan?)")
            }
            FnElimError::FunctionTermInComparison(c) => {
                write!(f, "function term in comparison {c}")
            }
            FnElimError::Resource(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for FnElimError {}

impl From<qc_guard::ResourceError> for FnElimError {
    fn from(e: qc_guard::ResourceError) -> Self {
        FnElimError::Resource(e)
    }
}

/// The shape of one argument position.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
enum Shape {
    /// An ordinary (non-functional) value.
    Plain,
    /// A term `f(t₁, …, tₖ)`; the tᵢ are plain and spliced inline.
    Fun(Symbol, usize),
}

type ShapeVec = Vec<Shape>;

fn shape_pred_name(pred: &Symbol, shapes: &ShapeVec) -> Symbol {
    if shapes.iter().all(|s| *s == Shape::Plain) {
        return *pred;
    }
    let mut name = String::from(pred.as_str());
    name.push_str("__");
    for s in shapes {
        match s {
            Shape::Plain => name.push('p'),
            Shape::Fun(f, k) => {
                name.push_str("_F");
                name.push_str(f.as_str());
                name.push_str(&k.to_string());
                name.push('_');
            }
        }
    }
    Symbol::new(name)
}

/// Eliminates function terms from a plan, preserving the function-free
/// answers of every IDB predicate under its original name (all-plain
/// shapes keep the original predicate; functional shapes get specialized
/// predicates).
///
/// The result is a function-free program equivalent to the input on
/// function-free EDB databases in the certain-answer sense: for each IDB
/// predicate `p`, the function-free tuples of `p` are exactly the tuples
/// of `p` in the output.
///
/// ```
/// use qc_datalog::parse_program;
/// use qc_mediator::fn_elim::eliminate_function_terms;
///
/// // A Skolemized inverse-rule plan...
/// let plan = parse_program(
///     "p(X, f(X)) :- v(X).
///      q(A) :- p(A, B).",
/// ).unwrap();
/// // ...becomes function-free, with q preserved.
/// let elim = eliminate_function_terms(&plan).unwrap();
/// assert!(!elim.has_function_terms());
/// assert!(elim.rules().iter().any(|r| r.head.pred == "q"));
/// ```
pub fn eliminate_function_terms(plan: &Program) -> Result<Program, FnElimError> {
    if !plan.has_function_terms() {
        return Ok(plan.clone());
    }
    let _span = qc_obs::span("fn_elim");
    qc_obs::count(
        qc_obs::Counter::FnElimSkolemsEliminated,
        count_function_symbols(plan),
    );
    let idb = plan.idb_preds();

    // Derivable shape vectors per IDB predicate.
    let mut derivable: BTreeMap<Symbol, BTreeSet<ShapeVec>> = BTreeMap::new();
    // Output rules, deduplicated.
    let mut out: BTreeSet<Rule> = BTreeSet::new();
    let budget = 100_000usize;

    loop {
        let mut changed = false;
        for rule in plan.rules() {
            let mut reports: Vec<(Rule, Symbol, ShapeVec)> = Vec::new();
            specialize_rule(
                rule,
                &idb,
                &derivable,
                &mut |new_rule, head_pred, head_shapes| {
                    reports.push((new_rule, head_pred, head_shapes));
                    Ok(())
                },
            )?;
            for (new_rule, head_pred, head_shapes) in reports {
                // One work unit per specialized rule considered — the same
                // granularity as the `FnElimRulesEmitted` counter.
                qc_guard::tick(qc_guard::stage::FN_ELIM, 1)?;
                if derivable.entry(head_pred).or_default().insert(head_shapes) {
                    changed = true;
                }
                // Canonicalize so identical specializations produced in
                // different iterations (with different fresh variables)
                // deduplicate.
                if out.insert(new_rule.canonicalize()) {
                    changed = true;
                }
                if out.len() > budget {
                    return Err(FnElimError::Resource(qc_guard::ResourceError::budget(
                        "fn_elim/rules",
                        out.len() as u64,
                        budget as u64,
                    )));
                }
            }
        }
        if !changed {
            break;
        }
    }
    let rules: Vec<Rule> = out.into_iter().collect();
    qc_obs::count(qc_obs::Counter::FnElimRulesEmitted, rules.len() as u64);
    Ok(Program::new(rules))
}

/// The number of distinct function (Skolem) symbols occurring in a plan.
fn count_function_symbols(plan: &Program) -> u64 {
    fn walk(t: &Term, out: &mut BTreeSet<Symbol>) {
        if let Term::App(f, args) = t {
            out.insert(*f);
            for a in args {
                walk(a, out);
            }
        }
    }
    let mut syms = BTreeSet::new();
    for rule in plan.rules() {
        for t in rule
            .head
            .args
            .iter()
            .chain(rule.body_atoms().flat_map(|a| a.args.iter()))
        {
            walk(t, &mut syms);
        }
    }
    syms.len() as u64
}

/// Specializes one rule for every combination of derivable body-atom
/// shapes; reports each resulting rule with its head shape vector.
fn specialize_rule(
    rule: &Rule,
    idb: &BTreeSet<Symbol>,
    derivable: &BTreeMap<Symbol, BTreeSet<ShapeVec>>,
    report: &mut dyn FnMut(Rule, Symbol, ShapeVec) -> Result<(), FnElimError>,
) -> Result<(), FnElimError> {
    // Collect IDB body-atom positions and their shape options.
    let body_atoms: Vec<&Atom> = rule.body_atoms().collect();
    let mut options: Vec<Vec<ShapeVec>> = Vec::new();
    for a in &body_atoms {
        if idb.contains(&a.pred) {
            let Some(shapes) = derivable.get(&a.pred) else {
                return Ok(()); // nothing derivable yet for this predicate
            };
            options.push(shapes.iter().cloned().collect());
        } else {
            options.push(vec![vec![Shape::Plain; a.arity()]]);
        }
    }

    // Cartesian product of shape choices.
    #[allow(clippy::too_many_arguments)]
    fn rec(
        rule: &Rule,
        body_atoms: &[&Atom],
        options: &[Vec<ShapeVec>],
        k: usize,
        sigma: &Subst,
        chosen: &mut Vec<ShapeVec>,
        gen: &mut VarGen,
        report: &mut dyn FnMut(Rule, Symbol, ShapeVec) -> Result<(), FnElimError>,
    ) -> Result<(), FnElimError> {
        if k == body_atoms.len() {
            return finish(rule, body_atoms, sigma, chosen, report);
        }
        'shapes: for shapes in &options[k] {
            // Unify each argument with its shape.
            let mut sigma2 = sigma.clone();
            for (arg, shape) in body_atoms[k].args.iter().zip(shapes) {
                match shape {
                    Shape::Plain => {} // checked at the end
                    Shape::Fun(f, arity) => {
                        let template =
                            Term::App(*f, (0..*arity).map(|_| Term::Var(gen.fresh())).collect());
                        if !unify_terms_with(&mut sigma2, arg, &template) {
                            continue 'shapes;
                        }
                    }
                }
            }
            chosen.push(shapes.clone());
            rec(
                rule,
                body_atoms,
                options,
                k + 1,
                &sigma2,
                chosen,
                gen,
                report,
            )?;
            chosen.pop();
        }
        Ok(())
    }

    /// Validates plain positions, derives the head shape, emits the
    /// flattened rule.
    fn finish(
        rule: &Rule,
        body_atoms: &[&Atom],
        sigma: &Subst,
        chosen: &[ShapeVec],
        report: &mut dyn FnMut(Rule, Symbol, ShapeVec) -> Result<(), FnElimError>,
    ) -> Result<(), FnElimError> {
        // Plain positions must not have resolved to function terms.
        for (a, shapes) in body_atoms.iter().zip(chosen) {
            for (arg, shape) in a.args.iter().zip(shapes) {
                if *shape == Shape::Plain && sigma.apply_term(arg).has_function() {
                    return Ok(());
                }
            }
        }
        // Comparisons must stay function-free.
        for c in rule.body_comparisons() {
            let c2 = sigma.apply_comparison(c);
            if c2.lhs.has_function() || c2.rhs.has_function() {
                return Err(FnElimError::FunctionTermInComparison(c2.to_string()));
            }
        }
        // Head shape and flattened head args.
        let mut head_shapes: ShapeVec = Vec::new();
        let mut head_args: Vec<Term> = Vec::new();
        for arg in &rule.head.args {
            let t = sigma.apply_term(arg);
            match t {
                Term::App(f, args) => {
                    for a in &args {
                        if a.has_function() {
                            return Err(FnElimError::NestedFunctionTerms(
                                Term::App(f, args.clone()).to_string(),
                            ));
                        }
                    }
                    head_shapes.push(Shape::Fun(f, args.len()));
                    head_args.extend(args);
                }
                other => {
                    head_shapes.push(Shape::Plain);
                    head_args.push(other);
                }
            }
        }
        // Flattened body.
        let mut body: Vec<Literal> = Vec::new();
        let mut atom_i = 0usize;
        for lit in &rule.body {
            match lit {
                Literal::Atom(a) => {
                    let shapes = &chosen[atom_i];
                    atom_i += 1;
                    let mut args: Vec<Term> = Vec::new();
                    for (arg, shape) in a.args.iter().zip(shapes) {
                        let t = sigma.apply_term(arg);
                        match shape {
                            Shape::Plain => args.push(t),
                            Shape::Fun(f, k) => match t {
                                Term::App(g, gargs) => {
                                    debug_assert_eq!(&g, f);
                                    debug_assert_eq!(gargs.len(), *k);
                                    args.extend(gargs);
                                }
                                _ => unreachable!("unified with the shape template"),
                            },
                        }
                    }
                    body.push(Literal::Atom(Atom {
                        pred: shape_pred_name(&a.pred, shapes),
                        args,
                    }));
                }
                Literal::Comp(c) => body.push(Literal::Comp(sigma.apply_comparison(c))),
            }
        }
        let head_pred_orig = rule.head.pred;
        let new_head = Atom {
            pred: shape_pred_name(&rule.head.pred, &head_shapes),
            args: head_args,
        };
        report(Rule::new(new_head, body), head_pred_orig, head_shapes)
    }

    let mut gen = VarGen::new();
    let mut chosen = Vec::new();
    rec(
        rule,
        &body_atoms,
        &options,
        0,
        &Subst::new(),
        &mut chosen,
        &mut gen,
        report,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inverse_rules::max_contained_plan;
    use crate::schema::example1_sources;
    use qc_datalog::eval::{answers, EvalOptions};
    use qc_datalog::{parse_program, Database};

    #[test]
    fn example3_elimination_and_unfolding() {
        // Example 2's plan P1 -> Example 3's function-free plan P1'.
        let q1 = parse_program(
            "q1(CarNo, Review) :- CarDesc(CarNo, Model, C, Y), Review(Model, Review, Rating).",
        )
        .unwrap();
        let plan = max_contained_plan(&q1, &example1_sources());
        let elim = eliminate_function_terms(&plan).unwrap();
        assert!(!elim.has_function_terms());
        let ucq = elim.unfold(&Symbol::new("q1")).unwrap();
        // Exactly the two conjunctive plans of Example 3.
        assert_eq!(ucq.disjuncts.len(), 2);
        let printed: Vec<String> = ucq
            .disjuncts
            .iter()
            .map(|d| d.to_rule().to_string())
            .collect();
        let has_red = printed
            .iter()
            .any(|s| s.contains("RedCars") && s.contains("CarAndDriver"));
        let has_antique = printed
            .iter()
            .any(|s| s.contains("AntiqueCars") && s.contains("CarAndDriver"));
        assert!(has_red, "{printed:?}");
        assert!(has_antique, "{printed:?}");
    }

    #[test]
    fn elimination_preserves_function_free_answers() {
        let q1 = parse_program(
            "q1(CarNo, Review) :- CarDesc(CarNo, Model, C, Y), Review(Model, Review, Rating).",
        )
        .unwrap();
        let plan = max_contained_plan(&q1, &example1_sources());
        let elim = eliminate_function_terms(&plan).unwrap();
        let db = Database::parse(
            "RedCars(c1, corolla, 1988). AntiqueCars(c2, ford, 1960).
             CarAndDriver(corolla, nice). CarAndDriver(ford, classic).",
        )
        .unwrap();
        let opts = EvalOptions::default();
        let ans = Symbol::new("q1");
        let with_fn = answers(&plan, &db, &ans, &opts).unwrap();
        let without_fn = answers(&elim, &db, &ans, &opts).unwrap();
        // Original plan's function-free answers == eliminated plan's.
        let ff: Vec<_> = with_fn
            .tuples()
            .iter()
            .filter(|t| t.iter().all(|v| !v.has_function()))
            .cloned()
            .collect();
        assert_eq!(ff.len(), 2);
        assert_eq!(without_fn.len(), 2);
        for t in &ff {
            assert!(without_fn.contains(t));
        }
    }

    #[test]
    fn plain_program_unchanged() {
        let p = parse_program("q(X) :- r(X, Y).").unwrap();
        assert_eq!(eliminate_function_terms(&p).unwrap(), p);
    }

    #[test]
    fn join_on_skolem_survives() {
        // Two atoms joining on a Skolem-valued column must still join
        // after elimination (the spliced arguments align).
        let plan = parse_program(
            "p(X, f(X)) :- v(X).
             r(Y, Z) :- p(Y, W), p(Z, W).
             q(A, B) :- r(A, B).",
        )
        .unwrap();
        let elim = eliminate_function_terms(&plan).unwrap();
        assert!(!elim.has_function_terms());
        let db = Database::parse("v(1). v(2).").unwrap();
        let opts = EvalOptions::default();
        let direct = answers(&plan, &db, &Symbol::new("q"), &opts).unwrap();
        let elimd = answers(&elim, &db, &Symbol::new("q"), &opts).unwrap();
        assert_eq!(direct.len(), 2); // (1,1), (2,2): f(1) != f(2)
        assert_eq!(elimd.len(), direct.len());
        for t in direct.tuples() {
            assert!(elimd.contains(&t));
        }
    }

    #[test]
    fn nested_function_terms_rejected() {
        let plan = parse_program("p(f(X)) :- v(X). r(f(Y)) :- p(Y). q(Z) :- r(Z).").unwrap();
        // p derives f(x); r(f(Y)) with Y = f(x) nests.
        assert!(matches!(
            eliminate_function_terms(&plan),
            Err(FnElimError::NestedFunctionTerms(_))
        ));
    }

    #[test]
    fn skolem_mismatch_prunes_rule() {
        // A body atom requiring a plain value never matches a predicate
        // that only derives Skolem values in that column.
        let plan = parse_program(
            "p(X, f(X)) :- v(X).
             q(X) :- p(X, 10).",
        )
        .unwrap();
        let elim = eliminate_function_terms(&plan).unwrap();
        let db = Database::parse("v(1).").unwrap();
        let rel = answers(&elim, &db, &Symbol::new("q"), &EvalOptions::default()).unwrap();
        assert!(rel.is_empty());
    }
}
