//! Binding-pattern limitations (§4 of the paper).
//!
//! Sources with access-pattern restrictions (an `Amazon`-style source
//! returns a price only given an ISBN) are modelled by adornments.
//! Definition 4.1 defines *executable* plans; Definition 4.2 restricts to
//! *sound* plans (no invented constants); Definition 4.3 defines
//! *reachable certain answers*.
//!
//! The maximally-contained executable plan (Duschka–Levy, \[15\]) is a
//! recursive datalog program even for conjunctive queries: a `dom`
//! predicate accumulates every obtainable constant, inverse rules are
//! guarded by `dom` atoms on bound positions, and free source outputs feed
//! `dom` back — recursion through `dom` is what Theorem 4.2 nonetheless
//! proves decidable.

use std::collections::BTreeSet;

use qc_datalog::eval::{answers, EvalOptions};
use qc_datalog::{Atom, Const, Literal, Program, Relation, Rule, Symbol, Term};

use crate::certain::CertainError;
use crate::fn_elim::eliminate_function_terms;
use crate::inverse_rules::inverse_rules;
use crate::schema::LavSetting;

/// The reserved domain-predicate name.
pub const DOM: &str = "dom";

/// Whether a rule is executable (Definition 4.1): in each body atom whose
/// predicate carries an adornment, every bound position holds a constant
/// or a variable that occurs earlier (to the left) in the body.
pub fn is_executable_rule(rule: &Rule, views: &LavSetting) -> bool {
    let mut seen: BTreeSet<qc_datalog::Var> = BTreeSet::new();
    for lit in &rule.body {
        match lit {
            Literal::Atom(a) => {
                if let Some(source) = views.source(a.pred.as_str()) {
                    // With several access paths, *some* adornment must be
                    // satisfied at this position in the body.
                    let satisfied = source.effective_adornments().iter().any(|adornment| {
                        adornment.bound_positions().all(|i| match &a.args[i] {
                            Term::Const(_) => true,
                            Term::Var(v) => seen.contains(v),
                            Term::App(..) => false,
                        })
                    });
                    if !satisfied {
                        return false;
                    }
                }
                a.collect_vars(&mut seen);
            }
            Literal::Comp(_) => {}
        }
    }
    true
}

/// Whether every rule of a program is executable.
pub fn is_executable_program(program: &Program, views: &LavSetting) -> bool {
    program.rules().iter().all(|r| is_executable_rule(r, views))
}

/// Builds the maximally-contained **executable** plan for `query` over
/// adorned sources (\[15\], §4.2 of the paper):
///
/// * `dom(c).` facts for every constant of the query and the views
///   (sound plans may only use those constants, Definition 4.2);
/// * for each source and each free output position, a `dom` rule
///   harvesting new constants (guarded by `dom` on the bound inputs);
/// * inverse rules guarded by `dom` atoms on bound positions;
/// * the query's own rules unchanged.
///
/// The result is recursive in general — recursion flows through `dom`.
///
/// ```
/// use qc_datalog::parse_program;
/// use qc_mediator::binding::executable_plan;
/// use qc_mediator::schema::LavSetting;
///
/// let mut views = LavSetting::parse(&["V(A, B) :- p(A, B)."]).unwrap();
/// views.sources[0] = views.sources[0].clone().with_adornment("bf");
/// let q = parse_program("q(X) :- p(c0, X).").unwrap();
/// let plan = executable_plan(&q, &views);
/// // Recursion through dom, seeded by the query constant.
/// assert!(plan.is_recursive());
/// assert!(plan.rules().iter().any(|r| r.to_string() == "dom(c0)."));
/// ```
pub fn executable_plan(query: &Program, views: &LavSetting) -> Program {
    let mut plan = query.clone();

    // dom facts for the constants of Q ∪ V.
    let mut consts: BTreeSet<Const> = query.consts();
    consts.extend(views.consts());
    for c in consts {
        plan.push(Rule::new(Atom::new(DOM, vec![Term::Const(c)]), vec![]));
    }

    for source in &views.sources {
        let head_args = source.view.head.args.clone();
        let call = Atom {
            pred: source.name,
            args: head_args.clone(),
        };
        for adornment in source.effective_adornments() {
            // Guards: dom on bound positions (variables only; constants
            // are trivially available).
            let guards: Vec<Literal> = adornment
                .bound_positions()
                .filter_map(|i| match &head_args[i] {
                    Term::Var(_) => Some(Literal::Atom(Atom::new(DOM, vec![head_args[i].clone()]))),
                    _ => None,
                })
                .collect();
            // dom harvest rules: one per free output position.
            for i in adornment.free_positions() {
                if let Term::Var(_) = &head_args[i] {
                    let mut body = guards.clone();
                    body.push(Literal::Atom(call.clone()));
                    plan.push(Rule::new(Atom::new(DOM, vec![head_args[i].clone()]), body));
                }
            }
        }
    }

    // Guarded inverse rules, one per access path.
    for rule in inverse_rules(views).rules() {
        let Literal::Atom(call) = &rule.body[0] else {
            unreachable!("inverse rules have a single source atom")
        };
        let source = views
            .source(call.pred.as_str())
            .expect("inverse rule calls a source");
        for adornment in source.effective_adornments() {
            let mut body: Vec<Literal> = adornment
                .bound_positions()
                .filter_map(|i| match &call.args[i] {
                    Term::Var(_) => Some(Literal::Atom(Atom::new(DOM, vec![call.args[i].clone()]))),
                    _ => None,
                })
                .collect();
            body.push(Literal::Atom(call.clone()));
            plan.push(Rule::new(rule.head.clone(), body));
        }
    }
    plan
}

/// Computes the *reachable certain answers* (Definition 4.3): evaluates
/// the function-term-eliminated executable plan over the source instance.
///
/// Evaluation of an executable plan only ever issues source accesses whose
/// bound arguments come from `dom`, so it models the access restrictions
/// faithfully; an in-memory instance stands in for the remote sources.
pub fn reachable_certain_answers(
    query: &Program,
    answer: &Symbol,
    views: &LavSetting,
    instance: &qc_datalog::Database,
    opts: &EvalOptions,
) -> Result<Relation, CertainError> {
    let plan = eliminate_function_terms(&executable_plan(query, views))?;
    // Restrict the instance to what the adornments allow: a source tuple
    // is *accessible* only if its bound arguments are in dom. The guarded
    // inverse rules enforce exactly this during evaluation, so we can
    // evaluate directly.
    let rel = answers(&plan, instance, answer, opts)?;
    Ok(rel
        .tuples()
        .iter()
        .filter(|t| t.iter().all(|v| !v.has_function()))
        .cloned()
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use qc_datalog::{parse_program, parse_rule, Database};

    fn amazon_views() -> LavSetting {
        // Price lookup needs the ISBN; the catalog lists ISBNs by author.
        // (Two mediated relations keyed by ISBN — a single wide `book`
        // relation would not make the join certain, since incomplete
        // sources never force two view tuples onto the same row.)
        let mut v = LavSetting::parse(&[
            "PriceOf(Isbn, Price) :- price(Isbn, Price).",
            "ByAuthor(Author, Isbn) :- authored(Isbn, Author).",
        ])
        .unwrap();
        v.sources[0] = v.sources[0].clone().with_adornment("bf");
        v.sources[1] = v.sources[1].clone().with_adornment("bf");
        v
    }

    #[test]
    fn executability_definition() {
        let v = amazon_views();
        // Bound argument appears earlier: executable.
        let ok = parse_rule("q(P) :- ByAuthor(eco, I), PriceOf(I, P).").unwrap();
        assert!(is_executable_rule(&ok, &v));
        // Bound argument never bound: not executable.
        let bad = parse_rule("q(P) :- PriceOf(I, P).").unwrap();
        assert!(!is_executable_rule(&bad, &v));
        // Order matters (left-to-right).
        let reordered = parse_rule("q(P) :- PriceOf(I, P), ByAuthor(eco, I).").unwrap();
        assert!(!is_executable_rule(&reordered, &v));
        // Constants satisfy bound positions.
        let konst = parse_rule("q(P) :- PriceOf(isbn1, P).").unwrap();
        assert!(is_executable_rule(&konst, &v));
    }

    #[test]
    fn executable_plan_is_recursive_and_executable() {
        let v = amazon_views();
        let q = parse_program("q(P) :- authored(I, eco), price(I, P).").unwrap();
        let plan = executable_plan(&q, &v);
        assert!(plan.is_recursive(), "recursion through dom is expected");
        assert!(is_executable_program(&plan, &v));
        // dom facts for the query constant.
        assert!(plan.rules().iter().any(|r| r.to_string() == "dom(eco)."));
    }

    #[test]
    fn reachable_certain_answers_chain() {
        // Knowing the author 'eco' lets us reach ISBNs, then prices.
        let v = amazon_views();
        let q = parse_program("q(P) :- authored(I, eco), price(I, P).").unwrap();
        let db = Database::parse(
            "ByAuthor(eco, i1). PriceOf(i1, 30). ByAuthor(eco, i2). PriceOf(i2, 45).
             PriceOf(i9, 99).",
        )
        .unwrap();
        let got =
            reachable_certain_answers(&q, &Symbol::new("q"), &v, &db, &EvalOptions::default())
                .unwrap();
        assert_eq!(got.len(), 2);
        assert!(got.contains(&vec![Term::int(30)]));
        assert!(got.contains(&vec![Term::int(45)]));
    }

    #[test]
    fn unreachable_constants_do_not_leak() {
        // The price of i9 exists in the source but no query constant can
        // reach it: the reachable certain answers must exclude it.
        let v = amazon_views();
        let q = parse_program("q(P) :- authored(I, A), price(I, P).").unwrap();
        let db = Database::parse("PriceOf(i9, 99). ByAuthor(kafka, i9).").unwrap();
        // No constants in Q or V at all: dom starts empty, nothing is
        // callable.
        let got =
            reachable_certain_answers(&q, &Symbol::new("q"), &v, &db, &EvalOptions::default())
                .unwrap();
        assert!(got.is_empty());
    }

    #[test]
    fn recursion_discovers_transitively() {
        // Classic Kwok–Weld example shape: citations reachable only
        // through repeated lookups.
        let mut v = LavSetting::parse(&["Cites(P1, P2) :- cites(P1, P2)."]).unwrap();
        v.sources[0] = v.sources[0].clone().with_adornment("bf");
        let q = parse_program("q(P) :- cites(p0, P). q(P) :- q(P1), cites(P1, P).").unwrap();
        let db =
            Database::parse("Cites(p0, p1). Cites(p1, p2). Cites(p2, p3). Cites(p9, p8).").unwrap();
        let got =
            reachable_certain_answers(&q, &Symbol::new("q"), &v, &db, &EvalOptions::default())
                .unwrap();
        assert_eq!(got.len(), 3);
        assert!(got.contains(&vec![Term::sym("p3")]));
        assert!(!got.contains(&vec![Term::sym("p8")]));
    }

    #[test]
    fn free_sources_need_no_dom_guard() {
        let v = LavSetting::parse(&["V(X, Y) :- p(X, Y)."]).unwrap();
        let q = parse_program("q(X) :- p(X, Y).").unwrap();
        let plan = executable_plan(&q, &v);
        assert!(is_executable_program(&plan, &v));
        let db = Database::parse("V(a, b).").unwrap();
        let got =
            reachable_certain_answers(&q, &Symbol::new("q"), &v, &db, &EvalOptions::default())
                .unwrap();
        assert!(got.contains(&vec![Term::sym("a")]));
    }

    #[test]
    fn paper_cheating_plan_excluded() {
        // §4.1: a plan may not invent 'corolla' to call RedCars^fbf. With
        // no constants in Q ∪ V, the reachable certain answers are empty
        // even though the source holds a red corolla.
        let mut v =
            LavSetting::parse(&["RedCars(C, M, Y) :- CarDescription(C, M, red, Y)."]).unwrap();
        // NOTE: 'red' IS a constant of V, but it can only feed the Model
        // position via dom — which is the sound-plan semantics.
        v.sources[0] = v.sources[0].clone().with_adornment("fbf");
        let q = parse_program("q(C, Y) :- CarDescription(C, M, red, Y).").unwrap();
        let db = Database::parse("RedCars(c1, corolla, 1988).").unwrap();
        let got =
            reachable_certain_answers(&q, &Symbol::new("q"), &v, &db, &EvalOptions::default())
                .unwrap();
        // dom = {red}; calling RedCars with Model=red finds nothing.
        assert!(got.is_empty());
    }
}
