//! The paper's hardness reductions, as executable workload generators and
//! correctness oracles.
//!
//! * [`thm33_reduction`] — Theorem 3.3: ∀∃-3CNF ≤ relative containment of
//!   conjunctive queries w.r.t. conjunctive views (Π₂ᵖ-hardness). The
//!   formula `F(x̄, ȳ)` is ∀∃-satisfiable (for every truth assignment to
//!   `ȳ` there is one to `x̄` satisfying `F`) iff `Q2 ⊑_V Q1`.
//! * [`asu_reduction`] — the Aho–Sagiv–Ullman reduction \[3\] from 3-CNF
//!   satisfiability to ordinary conjunctive-query containment
//!   (NP-hardness baseline, experiment E5): `F` satisfiable iff
//!   `Q2 ⊆ Q1`.
//! * brute-force SAT / ∀∃-SAT oracles to validate both reductions.

use qc_datalog::{Atom, ConjunctiveQuery, Literal, Program, Rule, Symbol, Term};
use rand::seq::SliceRandom;
use rand::Rng;

use crate::schema::{LavSetting, SourceDescription};

/// A variable of a ∀∃-3CNF formula: existential `X(i)` or universal
/// `Y(j)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CnfVar {
    /// Existentially quantified (inner) variable `x_i`.
    X(usize),
    /// Universally quantified (outer) variable `y_j`.
    Y(usize),
}

/// A literal: a variable or its negation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lit {
    /// The variable.
    pub var: CnfVar,
    /// `true` for a positive literal.
    pub positive: bool,
}

impl Lit {
    fn eval(&self, x: &[bool], y: &[bool]) -> bool {
        let v = match self.var {
            CnfVar::X(i) => x[i],
            CnfVar::Y(j) => y[j],
        };
        v == self.positive
    }
}

/// A 3-CNF formula over `x_0..x_{num_x-1}` and `y_0..y_{num_y-1}`, with
/// three *distinct* variables per clause (as the reduction requires).
#[derive(Debug, Clone)]
pub struct Cnf3 {
    /// Number of existential variables.
    pub num_x: usize,
    /// Number of universal variables.
    pub num_y: usize,
    /// The clauses.
    pub clauses: Vec<[Lit; 3]>,
}

impl Cnf3 {
    /// Evaluates the matrix under an assignment.
    pub fn eval(&self, x: &[bool], y: &[bool]) -> bool {
        self.clauses.iter().all(|c| c.iter().any(|l| l.eval(x, y)))
    }

    /// Brute-force ∀ȳ ∃x̄ F(x̄, ȳ).
    pub fn is_forall_exists_satisfiable(&self) -> bool {
        for ymask in 0u64..(1 << self.num_y) {
            let y: Vec<bool> = (0..self.num_y).map(|j| ymask & (1 << j) != 0).collect();
            let mut found = false;
            for xmask in 0u64..(1 << self.num_x) {
                let x: Vec<bool> = (0..self.num_x).map(|i| xmask & (1 << i) != 0).collect();
                if self.eval(&x, &y) {
                    found = true;
                    break;
                }
            }
            if !found {
                return false;
            }
        }
        true
    }

    /// Brute-force plain satisfiability (∃ everything).
    pub fn is_satisfiable(&self) -> bool {
        for ymask in 0u64..(1 << self.num_y) {
            let y: Vec<bool> = (0..self.num_y).map(|j| ymask & (1 << j) != 0).collect();
            for xmask in 0u64..(1 << self.num_x) {
                let x: Vec<bool> = (0..self.num_x).map(|i| xmask & (1 << i) != 0).collect();
                if self.eval(&x, &y) {
                    return true;
                }
            }
        }
        false
    }
}

/// A generated Theorem 3.3 instance: `F` is ∀∃-satisfiable iff
/// `contained ⊑_V container`.
#[derive(Debug, Clone)]
pub struct Thm33Instance {
    /// The query on the contained side (the paper's `Q2'`).
    pub contained: Program,
    /// Its answer predicate.
    pub contained_ans: Symbol,
    /// The query on the containing side (the paper's `Q1'`).
    pub container: Program,
    /// Its answer predicate.
    pub container_ans: Symbol,
    /// The views.
    pub views: LavSetting,
}

fn var_term(v: CnfVar) -> Term {
    match v {
        CnfVar::X(i) => Term::var(format!("X{i}")),
        CnfVar::Y(j) => Term::var(format!("Y{j}")),
    }
}

/// Builds the Theorem 3.3 reduction for a ∀∃-3CNF formula.
///
/// # Panics
/// Panics if a clause repeats a variable (the reduction needs the seven
/// satisfying assignments per clause to be over three distinct columns).
pub fn thm33_reduction(f: &Cnf3) -> Thm33Instance {
    for c in &f.clauses {
        assert!(
            c[0].var != c[1].var && c[0].var != c[2].var && c[1].var != c[2].var,
            "clauses must use three distinct variables"
        );
    }
    // Q1': q1() :- r_i(z_{i,1}, z_{i,2}, z_{i,3}) for each clause,
    //              e_j(Yj) for each universal variable.
    let mut q1_body: Vec<Literal> = Vec::new();
    for (i, c) in f.clauses.iter().enumerate() {
        q1_body.push(Literal::Atom(Atom::new(
            format!("r{i}"),
            c.iter().map(|l| var_term(l.var)).collect(),
        )));
    }
    for j in 0..f.num_y {
        q1_body.push(Literal::Atom(Atom::new(
            format!("e{j}"),
            vec![Term::var(format!("Y{j}"))],
        )));
    }
    let q1 = Program::new(vec![Rule::new(Atom::new("q1", vec![]), q1_body)]);

    // Q2': q2() :- the seven satisfying rows of each clause, e_j(Uj).
    let mut q2_body: Vec<Literal> = Vec::new();
    for (i, c) in f.clauses.iter().enumerate() {
        for mask in 0u8..8 {
            let bits = [mask & 1 != 0, mask & 2 != 0, mask & 4 != 0];
            // The unique falsifying assignment sets every literal false.
            let falsifies = c.iter().zip(&bits).all(|(l, b)| *b != l.positive);
            if falsifies {
                continue;
            }
            q2_body.push(Literal::Atom(Atom::new(
                format!("r{i}"),
                bits.iter().map(|b| Term::int(i64::from(*b))).collect(),
            )));
        }
    }
    for j in 0..f.num_y {
        q2_body.push(Literal::Atom(Atom::new(
            format!("e{j}"),
            vec![Term::var(format!("U{j}"))],
        )));
    }
    let q2 = Program::new(vec![Rule::new(Atom::new("q2", vec![]), q2_body)]);

    // Views: v_i mirrors r_i; w_{j,b} fixes e_j to b.
    let mut sources = Vec::new();
    for i in 0..f.clauses.len() {
        sources.push(
            SourceDescription::parse(&format!("v{i}(Z1, Z2, Z3) :- r{i}(Z1, Z2, Z3)."))
                .expect("generated view parses"),
        );
    }
    for j in 0..f.num_y {
        for b in 0..2 {
            sources.push(
                SourceDescription::parse(&format!("w{j}_{b}() :- e{j}({b})."))
                    .expect("generated view parses"),
            );
        }
    }

    Thm33Instance {
        contained: q2,
        contained_ans: Symbol::new("q2"),
        container: q1,
        container_ans: Symbol::new("q1"),
        views: LavSetting { sources },
    }
}

/// The Aho–Sagiv–Ullman reduction \[3\]: ordinary CQ containment. Returns
/// `(q1, q2)` with `F` (all variables read as existential) satisfiable iff
/// `q2 ⊆ q1`.
pub fn asu_reduction(f: &Cnf3) -> (ConjunctiveQuery, ConjunctiveQuery) {
    let inst = thm33_reduction(&Cnf3 {
        num_x: f.num_x,
        num_y: 0,
        clauses: f
            .clauses
            .iter()
            .map(|c| {
                c.map(|l| Lit {
                    var: match l.var {
                        CnfVar::X(i) => CnfVar::X(i),
                        CnfVar::Y(j) => CnfVar::X(f.num_x + j),
                    },
                    positive: l.positive,
                })
            })
            .collect(),
    });
    let q1 = ConjunctiveQuery::from_rule(&inst.container.rules()[0]);
    let q2 = ConjunctiveQuery::from_rule(&inst.contained.rules()[0]);
    (q1, q2)
}

/// Generates a random 3-CNF with distinct variables per clause.
///
/// # Panics
/// Panics if `num_x + num_y < 3`.
pub fn random_cnf3(num_x: usize, num_y: usize, num_clauses: usize, rng: &mut impl Rng) -> Cnf3 {
    assert!(num_x + num_y >= 3, "need at least three variables");
    let all_vars: Vec<CnfVar> = (0..num_x)
        .map(CnfVar::X)
        .chain((0..num_y).map(CnfVar::Y))
        .collect();
    let clauses = (0..num_clauses)
        .map(|_| {
            let mut vars = all_vars.clone();
            vars.shuffle(rng);
            [0, 1, 2].map(|k| Lit {
                var: vars[k],
                positive: rng.gen_bool(0.5),
            })
        })
        .collect();
    Cnf3 {
        num_x,
        num_y,
        clauses,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relative::relatively_contained;
    use qc_containment::cq_contained;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn lit(var: CnfVar, positive: bool) -> Lit {
        Lit { var, positive }
    }

    /// The paper's example formula: (x1 ∨ x2 ∨ y1) ∧ (¬x1 ∨ ¬x2 ∨ y2).
    fn paper_formula() -> Cnf3 {
        Cnf3 {
            num_x: 2,
            num_y: 2,
            clauses: vec![
                [
                    lit(CnfVar::X(0), true),
                    lit(CnfVar::X(1), true),
                    lit(CnfVar::Y(0), true),
                ],
                [
                    lit(CnfVar::X(0), false),
                    lit(CnfVar::X(1), false),
                    lit(CnfVar::Y(1), true),
                ],
            ],
        }
    }

    #[test]
    fn paper_formula_shape() {
        let f = paper_formula();
        assert!(f.is_forall_exists_satisfiable());
        let inst = thm33_reduction(&f);
        // Seven satisfying rows per clause, plus e-subgoals.
        let q2_atoms = inst.contained.rules()[0].body_atoms().count();
        assert_eq!(q2_atoms, 7 * 2 + 2);
        let q1_atoms = inst.container.rules()[0].body_atoms().count();
        assert_eq!(q1_atoms, 2 + 2);
        // 2 clause views + 2 * 2 w-views.
        assert_eq!(inst.views.sources.len(), 2 + 4);
    }

    #[test]
    fn paper_formula_relative_containment_holds() {
        let f = paper_formula();
        let inst = thm33_reduction(&f);
        let got = relatively_contained(
            &inst.contained,
            &inst.contained_ans,
            &inst.container,
            &inst.container_ans,
            &inst.views,
        )
        .unwrap();
        assert!(got);
    }

    #[test]
    fn unsatisfiable_formula_rejected() {
        // y1 alone in every clause polarity... construct ∀∃-unsat:
        // clause (y0 ∨ x0 ∨ x1) ∧ (¬y0 ∨ x0 ∨ x1) ∧ (y0 ∨ ¬x0 ∨ ¬x1) ∧
        // (¬y0 ∨ ¬x0 ∨ ¬x1) with extra clauses forcing x0 ≠ ... simplest:
        // F = (x0 ∨ x0...) not allowed (distinct vars). Use brute force to
        // find a random unsat instance instead.
        let mut rng = StdRng::seed_from_u64(7);
        let mut tried = 0;
        loop {
            let f = random_cnf3(2, 2, 5, &mut rng);
            tried += 1;
            assert!(tried < 500, "could not find an ∀∃-unsat formula");
            if f.is_forall_exists_satisfiable() {
                continue;
            }
            let inst = thm33_reduction(&f);
            let got = relatively_contained(
                &inst.contained,
                &inst.contained_ans,
                &inst.container,
                &inst.container_ans,
                &inst.views,
            )
            .unwrap();
            assert!(!got);
            break;
        }
    }

    #[test]
    fn reduction_agrees_with_brute_force_on_random_formulas() {
        let mut rng = StdRng::seed_from_u64(42);
        for trial in 0..12 {
            let f = random_cnf3(2, 1, 1 + trial % 3, &mut rng);
            let expected = f.is_forall_exists_satisfiable();
            let inst = thm33_reduction(&f);
            let got = relatively_contained(
                &inst.contained,
                &inst.contained_ans,
                &inst.container,
                &inst.container_ans,
                &inst.views,
            )
            .unwrap();
            assert_eq!(got, expected, "trial {trial}: {f:?}");
        }
    }

    #[test]
    fn asu_reduction_agrees_with_sat() {
        let mut rng = StdRng::seed_from_u64(11);
        for trial in 0..20 {
            let f = random_cnf3(3, 0, 1 + trial % 4, &mut rng);
            let (q1, q2) = asu_reduction(&f);
            assert_eq!(
                cq_contained(&q2, &q1),
                f.is_satisfiable(),
                "trial {trial}: {f:?}"
            );
        }
    }
}
