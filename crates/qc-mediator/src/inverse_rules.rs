//! The inverse-rules algorithm (Duschka–Genesereth–Levy, \[15\] in the
//! paper).
//!
//! Each view definition is inverted into one rule per non-comparison
//! subgoal; existential variables of the view become Skolem function terms
//! over the view's head variables, keeping inverted rules safe (§2.3).
//! The maximally-contained plan for a query is the union of the query's
//! rules and the inverted view definitions — reproducing Example 2 of the
//! paper exactly.

use qc_datalog::{Atom, Literal, Program, Rule, Subst, Term};

use crate::schema::{LavSetting, SourceDescription};

/// Inverts a single source description: one rule per non-comparison
/// subgoal of its view, existentials Skolemized over the head variables.
///
/// The inversion of a source depends on nothing but that source (no
/// shared fresh-variable state, no cross-view interaction), which is what
/// makes exact delta maintenance possible: [`inverse_rules`] is the
/// per-source concatenation in catalog order, and
/// [`crate::catalog::CompiledCatalog`] caches each source's block and
/// reassembles the same program without re-inverting untouched views.
pub fn inverse_rules_for_source(source: &SourceDescription) -> Vec<Rule> {
    let view = &source.view;
    let head_atom = Atom {
        pred: source.name,
        args: view.head.args.clone(),
    };
    // Skolemize existential variables.
    let mut sigma = Subst::new();
    for z in view.existential_vars() {
        let skolem = Term::App(
            qc_datalog::Symbol::new(format!("f_{}_{}", source.name, z.name())),
            view.head.args.clone(),
        );
        let bound = sigma.bind(z, skolem);
        debug_assert!(bound, "skolem binding cannot fail the occurs check");
    }
    view.subgoals
        .iter()
        .map(|subgoal| {
            Rule::new(
                sigma.apply_atom(subgoal),
                vec![Literal::Atom(head_atom.clone())],
            )
        })
        .collect()
}

/// Inverts every view definition of the setting.
///
/// For a view `V(X̄) :- b₁, …, bₙ, comparisons`, produces rules
/// `bⱼσ :- V(X̄)` where σ maps each existential variable `z` of the view
/// to the Skolem term `f_V_z(X̄)`. Comparison subgoals of the view are
/// dropped (they constrain which tuples a source may contain; inversion
/// of an *incomplete* source stays sound without them).
///
/// ```
/// use qc_mediator::inverse_rules::inverse_rules;
/// use qc_mediator::schema::LavSetting;
///
/// let views = LavSetting::parse(&["V(X) :- p(X, Y)."]).unwrap();
/// let inv = inverse_rules(&views);
/// assert_eq!(inv.rules()[0].to_string(), "p(X, f_V_Y(X)) :- V(X).");
/// ```
pub fn inverse_rules(views: &LavSetting) -> Program {
    let mut out = Program::default();
    for source in &views.sources {
        for rule in inverse_rules_for_source(source) {
            out.push(rule);
        }
    }
    qc_obs::count(
        qc_obs::Counter::InverseRulesGenerated,
        out.rules().len() as u64,
    );
    out
}

/// The maximally-contained query plan (no binding patterns): the query's
/// rules plus the inverted view definitions (§2.3, Example 2). The plan's
/// EDB relations are the source relations.
pub fn max_contained_plan(query: &Program, views: &LavSetting) -> Program {
    let mut plan = query.clone();
    plan.extend(&inverse_rules(views));
    plan
}

/// Fresh existential variables of view heads must not capture: the Skolem
/// arguments are exactly the head variables, matching \[15\].
#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{example1_sources, LavSetting};
    use qc_datalog::{parse_program, parse_term, Symbol};

    #[test]
    fn example2_inverse_rules() {
        // The paper's Example 2, rule by rule.
        let inv = inverse_rules(&example1_sources());
        let rules: Vec<String> = inv.rules().iter().map(|r| r.to_string()).collect();
        assert_eq!(rules.len(), 3);
        assert_eq!(
            rules[0],
            "CarDesc(CarNo, Model, red, Year) :- RedCars(CarNo, Model, Year)."
        );
        assert_eq!(
            rules[1],
            "CarDesc(CarNo, Model, f_AntiqueCars_Color(CarNo, Model, Year), Year) :- AntiqueCars(CarNo, Model, Year)."
        );
        assert_eq!(
            rules[2],
            "Review(Model, Review, 10) :- CarAndDriver(Model, Review)."
        );
    }

    #[test]
    fn example2_full_plan() {
        let q1 = parse_program(
            "q1(CarNo, Review) :- CarDesc(CarNo, Model, C, Y), Review(Model, Review, Rating).",
        )
        .unwrap();
        let plan = max_contained_plan(&q1, &example1_sources());
        assert_eq!(plan.rules().len(), 4);
        // EDBs of the plan are exactly the source relations.
        let edb = plan.edb_preds();
        for s in ["RedCars", "AntiqueCars", "CarAndDriver"] {
            assert!(edb.contains(&Symbol::new(s)), "{s}");
        }
        assert!(!edb.contains(&Symbol::new("CarDesc")));
        assert!(plan.has_function_terms());
    }

    #[test]
    fn multi_subgoal_views_invert_per_subgoal() {
        let v = LavSetting::parse(&["V(X) :- p(X, Y), r(Y, Z), X != Z."]).unwrap();
        let inv = inverse_rules(&v);
        assert_eq!(inv.rules().len(), 2);
        // Shared existential Y gets the same Skolem term in both rules.
        let y1 = inv.rules()[0].head.args[1].clone();
        let y2 = inv.rules()[1].head.args[0].clone();
        assert_eq!(y1, y2);
        assert_eq!(y1, parse_term("f_V_Y(X)").unwrap());
        // Comparison dropped.
        assert!(inv
            .rules()
            .iter()
            .all(|r| r.body_comparisons().next().is_none()));
    }

    #[test]
    fn distinguished_vars_pass_through() {
        let v = LavSetting::parse(&["V(X, Y) :- p(X, Y)."]).unwrap();
        let inv = inverse_rules(&v);
        assert_eq!(inv.rules()[0].to_string(), "p(X, Y) :- V(X, Y).");
        assert!(!inv.has_function_terms());
    }

    #[test]
    fn plan_is_recursive_iff_query_is() {
        let views = example1_sources();
        let nonrec = parse_program("q(X) :- CarDesc(X, M, C, Y).").unwrap();
        assert!(!max_contained_plan(&nonrec, &views).is_recursive());
        let rec = parse_program(
            "q(X, Y) :- CarDesc(X, Y, C, Z). q(X, Y) :- q(X, W), CarDesc(W, Y, C, Z).",
        )
        .unwrap();
        assert!(max_contained_plan(&rec, &views).is_recursive());
    }
}
