//! Plan expansion `P ↦ P^exp` (§2.3 of the paper).
//!
//! The expansion replaces every source-relation atom in a plan with the
//! body of the corresponding view definition, using fresh variables for
//! the view's existential variables. Expansions are what the paper's
//! reduction theorems compare against queries: `Q1 ⊑_V Q2 ⟺ P1^exp ⊆ Q2`
//! (Theorems 4.1 and 5.2). Note that view *comparison* subgoals are kept
//! by the expansion — they matter for containment even though the
//! inverse rules drop them.

use qc_datalog::{unify_atoms, ConjunctiveQuery, Literal, Program, Rule, Ucq, VarGen};

use crate::schema::LavSetting;

/// Expands a plan program: every source atom in a rule body is replaced by
/// the view's (renamed-apart) body, unified with the atom's arguments.
/// Rules whose source atoms cannot unify with the view head are dropped
/// (they can never produce answers).
pub fn expand_program(plan: &Program, views: &LavSetting) -> Program {
    let mut gen = VarGen::new();
    let mut out = Program::default();
    'rules: for rule in plan.rules() {
        // Expand atoms left to right, accumulating a substitution.
        let mut work = rule.clone();
        loop {
            let pos = work.body.iter().position(
                |l| matches!(l, Literal::Atom(a) if views.source(a.pred.as_str()).is_some()),
            );
            let Some(i) = pos else { break };
            let Literal::Atom(call) = work.body[i].clone() else {
                unreachable!()
            };
            let source = views
                .source(call.pred.as_str())
                .expect("position found above");
            let fresh_view = source.view.rename_apart(&mut gen);
            // Orientation matters: unify the *view* head against the call
            // so that the view's fresh variables bind to the plan's terms
            // and the plan's variable names survive the expansion (the
            // constraint pull-back in `minicon` depends on this).
            let Some(mgu) = unify_atoms(&fresh_view.head, &call) else {
                continue 'rules; // this rule can never fire
            };
            let mut body = work.body.clone();
            let replacement: Vec<Literal> = fresh_view
                .subgoals
                .iter()
                .cloned()
                .map(Literal::from)
                .chain(fresh_view.comparisons.iter().cloned().map(Literal::from))
                .collect();
            body.splice(i..=i, replacement);
            work = Rule::new(work.head.clone(), body).substitute(&mgu);
        }
        out.push(work);
    }
    qc_obs::count(qc_obs::Counter::ExpansionRules, out.rules().len() as u64);
    out
}

/// Expands a UCQ plan disjunct-wise.
pub fn expand_ucq(plan: &Ucq, views: &LavSetting) -> Ucq {
    let rules: Vec<Rule> = plan.to_rules();
    let expanded = expand_program(&Program::new(rules), views);
    let disjuncts: Vec<ConjunctiveQuery> = expanded
        .rules()
        .iter()
        .map(ConjunctiveQuery::from_rule)
        .collect();
    if disjuncts.is_empty() {
        Ucq::empty(plan.pred.as_str(), plan.arity)
    } else {
        Ucq::new(disjuncts).expect("expansion preserves heads")
    }
}

/// Expands a single conjunctive plan into a conjunctive query over the
/// mediated schema.
pub fn expand_cq(plan: &ConjunctiveQuery, views: &LavSetting) -> Option<ConjunctiveQuery> {
    let expanded = expand_program(&Program::new(vec![plan.to_rule()]), views);
    expanded.rules().first().map(ConjunctiveQuery::from_rule)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::example1_sources;
    use qc_datalog::{parse_query, parse_rule};

    #[test]
    fn expansion_replaces_sources_and_keeps_comparisons() {
        let views = example1_sources();
        let plan = parse_query(
            "p1(CarNo, Review) :- AntiqueCars(CarNo, Model, Year), CarAndDriver(Model, Review).",
        )
        .unwrap();
        let exp = expand_cq(&plan, &views).unwrap();
        // CarDesc + Review subgoals, plus the view's Year < 1970.
        assert_eq!(exp.subgoals.len(), 2);
        assert_eq!(exp.comparisons.len(), 1);
        let preds: Vec<&str> = exp.subgoals.iter().map(|a| a.pred.as_str()).collect();
        assert!(preds.contains(&"CarDesc"));
        assert!(preds.contains(&"Review"));
        // The Review subgoal carries the constant 10 from the view.
        let review = exp.subgoals.iter().find(|a| a.pred == "Review").unwrap();
        assert_eq!(review.args[2], qc_datalog::Term::int(10));
    }

    #[test]
    fn existentials_are_fresh_per_occurrence() {
        let views = LavSetting::parse(&["V(X) :- p(X, Y)."]).unwrap();
        let plan = parse_query("q(A, B) :- V(A), V(B).").unwrap();
        let exp = expand_cq(&plan, &views).unwrap();
        assert_eq!(exp.subgoals.len(), 2);
        // The two p-atoms must not share their existential second column.
        assert_ne!(exp.subgoals[0].args[1], exp.subgoals[1].args[1]);
    }

    #[test]
    fn non_unifying_call_drops_rule() {
        let views = LavSetting::parse(&["V(10) :- p(10)."]).unwrap();
        let plan = Program::new(vec![parse_rule("q(X) :- V(20), r(X).").unwrap()]);
        let exp = expand_program(&plan, &views);
        assert!(exp.rules().is_empty());
    }

    #[test]
    fn call_constants_propagate() {
        let views = LavSetting::parse(&["V(X, Y) :- p(X, Y)."]).unwrap();
        let plan = parse_query("q(A) :- V(A, 10).").unwrap();
        let exp = expand_cq(&plan, &views).unwrap();
        assert_eq!(exp.subgoals[0].args[1], qc_datalog::Term::int(10));
    }

    #[test]
    fn non_source_atoms_untouched() {
        let views = example1_sources();
        let plan = Program::new(vec![
            parse_rule("q(X) :- helper(X).").unwrap(),
            parse_rule("helper(X) :- RedCars(X, M, Y).").unwrap(),
        ]);
        let exp = expand_program(&plan, &views);
        assert_eq!(exp.rules()[0].to_string(), "q(X) :- helper(X).");
        assert!(exp.rules()[1].to_string().contains("CarDesc"));
    }

    #[test]
    fn expand_ucq_shape() {
        let views = example1_sources();
        let plan = Ucq::new(vec![
            parse_query("p1(C, R) :- RedCars(C, M, Y), CarAndDriver(M, R).").unwrap(),
            parse_query("p1(C, R) :- AntiqueCars(C, M, Y), CarAndDriver(M, R).").unwrap(),
        ])
        .unwrap();
        let exp = expand_ucq(&plan, &views);
        assert_eq!(exp.disjuncts.len(), 2);
        assert!(exp.disjuncts[1].comparisons.len() == 1);
    }
}
