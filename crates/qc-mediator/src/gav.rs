//! Global-as-view relative containment (§1 and §6 of the paper).
//!
//! Under GAV, the *mediated* relations are defined as views over the
//! source relations. As the paper notes, "algorithms and complexity
//! results for relative containment are straightforward corollaries of
//! traditional query containment results": unfolding a query through the
//! GAV definitions yields a query over the sources whose answers are the
//! certain answers, so `Q1 ⊑ Q2` relative to a GAV setting is ordinary
//! containment of the unfoldings.

use qc_containment::ucq_contained;
use qc_datalog::{Program, Symbol, Ucq, UnfoldError};

/// A GAV setting: each mediated relation is defined by rules over the
/// source relations (possibly a union — multiple rules per relation).
#[derive(Debug, Clone, Default)]
pub struct GavSetting {
    /// The mediated-relation definitions.
    pub definitions: Program,
}

impl GavSetting {
    /// Parses GAV definitions from rule syntax.
    pub fn parse(src: &str) -> Result<GavSetting, qc_datalog::ParseError> {
        Ok(GavSetting {
            definitions: qc_datalog::parse_program(src)?,
        })
    }
}

/// Unfolds a (nonrecursive) query through the GAV definitions into a UCQ
/// over the source relations.
pub fn gav_unfold(
    query: &Program,
    answer: &Symbol,
    setting: &GavSetting,
) -> Result<Ucq, UnfoldError> {
    let mut combined = query.clone();
    combined.extend(&setting.definitions);
    combined.unfold(answer)
}

/// Decides GAV relative containment by ordinary containment of the
/// unfoldings (supports comparisons via the dense-order test).
pub fn relatively_contained_gav(
    q1: &Program,
    ans1: &Symbol,
    q2: &Program,
    ans2: &Symbol,
    setting: &GavSetting,
) -> Result<bool, UnfoldError> {
    let u1 = gav_unfold(q1, ans1, setting)?;
    let u2 = gav_unfold(q2, ans2, setting)?;
    Ok(ucq_contained(&u1, &u2))
}

#[cfg(test)]
mod tests {
    use super::*;
    use qc_datalog::parse_program;

    fn sym(s: &str) -> Symbol {
        Symbol::new(s)
    }

    #[test]
    fn gav_unfolding_containment() {
        // Mediated `car` is the union of two source catalogs.
        let setting = GavSetting::parse(
            "car(Id, Model) :- dealerA(Id, Model).
             car(Id, Model) :- dealerB(Id, Model, Price).",
        )
        .unwrap();
        let q1 = parse_program("q1(M) :- car(I, M).").unwrap();
        let q2 = parse_program("q2(M) :- dealerA(I, M).").unwrap();
        // dealerA-only is contained in the union, not vice versa.
        assert!(relatively_contained_gav(&q2, &sym("q2"), &q1, &sym("q1"), &setting).unwrap());
        assert!(!relatively_contained_gav(&q1, &sym("q1"), &q2, &sym("q2"), &setting).unwrap());
    }

    #[test]
    fn gav_equivalence_through_definitions() {
        // Two syntactically different queries collapse to the same
        // unfolding.
        let setting = GavSetting::parse("m(X) :- s(X, X).").unwrap();
        let q1 = parse_program("q1(X) :- m(X).").unwrap();
        let q2 = parse_program("q2(X) :- s(X, X).").unwrap();
        assert!(relatively_contained_gav(&q1, &sym("q1"), &q2, &sym("q2"), &setting).unwrap());
        assert!(relatively_contained_gav(&q2, &sym("q2"), &q1, &sym("q1"), &setting).unwrap());
    }

    #[test]
    fn gav_with_comparisons() {
        let setting = GavSetting::parse(
            "old(Id) :- cars(Id, Y), Y < 1970.
             all(Id) :- cars(Id, Y).",
        )
        .unwrap();
        let q1 = parse_program("q1(I) :- old(I).").unwrap();
        let q2 = parse_program("q2(I) :- all(I).").unwrap();
        assert!(relatively_contained_gav(&q1, &sym("q1"), &q2, &sym("q2"), &setting).unwrap());
        assert!(!relatively_contained_gav(&q2, &sym("q2"), &q1, &sym("q1"), &setting).unwrap());
    }

    #[test]
    fn recursive_gav_rejected() {
        let setting =
            GavSetting::parse("m(X, Y) :- s(X, Y). m(X, Z) :- m(X, Y), s(Y, Z).").unwrap();
        let q = parse_program("q(X, Y) :- m(X, Y).").unwrap();
        assert!(gav_unfold(&q, &sym("q"), &setting).is_err());
    }
}
