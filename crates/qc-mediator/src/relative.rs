//! Relative containment — Definitions 2.4 and 4.5, Theorems 3.1–5.3.
//!
//! `Q1 ⊑_V Q2` iff for every source instance `I`, `certain(Q1, I) ⊆
//! certain(Q2, I)`. The decision procedures all reduce through the
//! maximally-contained plan `P1` of `Q1` and the equivalence
//! `P1 ⊑ P2 ⟺ P1^exp ⊆ Q2` (Theorem 4.1; Theorem 5.2; and, as the paper
//! notes after Theorem 4.2, the analogous statement for the plain case):
//!
//! | case | `P1` construction | final check |
//! |------|-------------------|-------------|
//! | Q1 nonrecursive, comparison-free (views may carry arbitrary comparisons — Thm 3.1, 5.2/5.3) | inverse rules → fn-elim → unfold | `P1^exp ⊆ Q2` via the dense-order UCQ test |
//! | Q1 nonrecursive, semi-interval; views semi-interval (Thm 5.1) | MiniCon + constraint completion | same |
//! | Q1 recursive, all comparison-free, Q2 nonrecursive (Thm 3.2) | inverse rules → fn-elim (datalog) | `P1^exp ⊆ Q2` via the type fixpoint |
//! | Q1 nonrecursive, Q2 recursive, all comparison-free (Thm 3.2) | both plans | `P1 ⊆ P2` by freezing each disjunct of `P1` |
//! | binding patterns (§4, Thms 4.1/4.2) | executable plan (`dom` recursion) → fn-elim | `P1^exp ⊆ Q2` via the type fixpoint |
//!
//! Cases the paper leaves open (arbitrary comparisons in *both* queries,
//! complete sources) are reported as [`RelativeError::Unsupported`].

use std::fmt;

use qc_containment::canonical::ucq_contained_in_datalog;
use qc_containment::datalog_ucq::{datalog_contained_in_ucq, DatalogUcqError, FixpointBudget};
use qc_containment::ucq_contained;
use qc_datalog::eval::{EvalError, EvalOptions};
use qc_datalog::{Program, Symbol, Ucq, UnfoldError};

use crate::catalog::CompiledCatalog;
use crate::expansion::{expand_cq, expand_program, expand_ucq};
use crate::fn_elim::{eliminate_function_terms, FnElimError};
use crate::inverse_rules::max_contained_plan;
use crate::minicon::semi_interval_plan;
use crate::schema::LavSetting;

/// Where the maximally-contained plan's ingredients come from: a plain
/// setting (inverse rules generated on the fly) or a compiled catalog
/// (cached per-view blocks reassembled). Both construct the *same* plan —
/// [`CompiledCatalog::inverse_program`] equals
/// [`crate::inverse_rules::inverse_rules`] by construction — so every
/// verdict below is independent of the variant chosen; the catalog only
/// skips recompilation work.
#[derive(Clone, Copy)]
enum Planner<'a> {
    Views(&'a LavSetting),
    Catalog(&'a CompiledCatalog),
}

impl<'a> Planner<'a> {
    fn views(&self) -> &'a LavSetting {
        match self {
            Planner::Views(v) => v,
            Planner::Catalog(c) => c.views(),
        }
    }

    /// The query's rules plus the inverse rules of every view.
    fn inverse_plan(&self, query: &Program) -> Program {
        match self {
            Planner::Views(v) => max_contained_plan(query, v),
            Planner::Catalog(c) => {
                let mut plan = query.clone();
                plan.extend(&c.inverse_program());
                plan
            }
        }
    }
}

/// Errors from the relative-containment procedures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RelativeError {
    /// The query/view class falls outside the paper's decidable cases
    /// (e.g. arbitrary comparisons in the contained query, or two
    /// recursive queries).
    Unsupported(String),
    /// Unfolding a nonrecursive program failed.
    Unfold(UnfoldError),
    /// The type-fixpoint procedure failed.
    DatalogUcq(DatalogUcqError),
    /// Function-term elimination failed.
    FnElim(FnElimError),
    /// Plan evaluation failed (freeze-and-evaluate route).
    Eval(EvalError),
    /// An installed [`qc_guard::Guard`] limit tripped in a stage with no
    /// fallible plumbing of its own (homomorphism search, memo, MiniCon,
    /// enumeration) and unwound to the enclosing `qc_guard::guarded`
    /// boundary.
    Resource(qc_guard::ResourceError),
    /// Definition 4.5's precondition fails: the constants of `Q1 ∪ V`
    /// must be a subset of those of `Q2 ∪ V`.
    ConstantsPrecondition,
}

impl fmt::Display for RelativeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RelativeError::Unsupported(s) => write!(f, "unsupported case: {s}"),
            RelativeError::Unfold(e) => write!(f, "unfold: {e}"),
            RelativeError::DatalogUcq(e) => write!(f, "datalog/UCQ containment: {e}"),
            RelativeError::FnElim(e) => write!(f, "function-term elimination: {e}"),
            RelativeError::Eval(e) => write!(f, "evaluation: {e}"),
            RelativeError::Resource(e) => write!(f, "{e}"),
            RelativeError::ConstantsPrecondition => write!(
                f,
                "Definition 4.5 precondition: constants of Q1 ∪ V must be among those of Q2 ∪ V"
            ),
        }
    }
}

impl std::error::Error for RelativeError {}

impl From<UnfoldError> for RelativeError {
    fn from(e: UnfoldError) -> Self {
        RelativeError::Unfold(e)
    }
}
impl From<DatalogUcqError> for RelativeError {
    fn from(e: DatalogUcqError) -> Self {
        RelativeError::DatalogUcq(e)
    }
}
impl From<FnElimError> for RelativeError {
    fn from(e: FnElimError) -> Self {
        RelativeError::FnElim(e)
    }
}
impl From<EvalError> for RelativeError {
    fn from(e: EvalError) -> Self {
        RelativeError::Eval(e)
    }
}
impl From<qc_guard::ResourceError> for RelativeError {
    fn from(e: qc_guard::ResourceError) -> Self {
        RelativeError::Resource(e)
    }
}

impl RelativeError {
    /// The underlying [`qc_guard::ResourceError`] when this error is a
    /// resource exhaustion (directly, or wrapped by a stage error), `None`
    /// for genuine input/class errors. This is the split the anytime
    /// verdict uses: resource errors become [`Verdict::Unknown`], anything
    /// else stays an error.
    pub fn resource(&self) -> Option<&qc_guard::ResourceError> {
        match self {
            RelativeError::Resource(e) => Some(e),
            RelativeError::DatalogUcq(DatalogUcqError::Resource(e)) => Some(e),
            RelativeError::FnElim(FnElimError::Resource(e)) => Some(e),
            RelativeError::Eval(EvalError::Resource(e)) => Some(e),
            _ => None,
        }
    }
}

/// Runs a fallible relative-containment step under a
/// [`qc_guard::guarded`] boundary, folding guard trips from
/// non-fallible stages into [`RelativeError::Resource`].
fn run_guarded<T>(f: impl FnOnce() -> Result<T, RelativeError>) -> Result<T, RelativeError> {
    match qc_guard::guarded(f) {
        Ok(r) => r,
        Err(e) => Err(RelativeError::Resource(e)),
    }
}

fn ucq_is_semi_interval(u: &Ucq) -> bool {
    u.disjuncts.iter().all(|d| d.is_semi_interval())
}

/// Prepares a datalog plan for expansion-based containment checks:
///
/// 1. drops rules whose body mentions a predicate that is neither an IDB
///    of the plan nor a source relation (a mediated atom no source
///    covers — such rules can never fire over a source instance);
/// 2. renames every IDB predicate with a `plan__` prefix so that, after
///    expansion, the plan's internal relations cannot collide with the
///    mediated-schema EDB relations the view bodies introduce (e.g. the
///    inverse rule `edge(X,Y) :- V(X,Y)` would otherwise expand to the
///    vacuous `edge(X,Y) :- edge(X,Y)`).
///
/// Returns the prepared plan and the renamed answer predicate.
fn sanitize_datalog_plan(plan: &Program, views: &LavSetting, answer: &Symbol) -> (Program, Symbol) {
    let idb = plan.idb_preds();
    let keep: Vec<_> = plan
        .rules()
        .iter()
        .filter(|r| {
            r.body_atoms()
                .all(|a| idb.contains(&a.pred) || views.source(a.pred.as_str()).is_some())
        })
        .cloned()
        .collect();
    let rename = |p: &Symbol| -> Symbol { Symbol::new(format!("plan__{p}")) };
    let renamed: Vec<_> = keep
        .into_iter()
        .map(|mut r| {
            r.head.pred = rename(&r.head.pred);
            for lit in &mut r.body {
                if let qc_datalog::Literal::Atom(a) = lit {
                    if idb.contains(&a.pred) {
                        a.pred = rename(&a.pred);
                    }
                }
            }
            r
        })
        .collect();
    (Program::new(renamed), rename(answer))
}

/// Builds the maximally-contained plan of a *nonrecursive* query as a UCQ
/// over the source relations.
pub fn max_contained_ucq_plan(
    query: &Program,
    answer: &Symbol,
    views: &LavSetting,
) -> Result<Ucq, RelativeError> {
    max_contained_ucq_plan_with(query, answer, Planner::Views(views))
}

/// [`max_contained_ucq_plan`] drawing inverse rules from a compiled
/// catalog's cached per-view blocks. Produces the identical plan (same
/// disjuncts, same order) without re-inverting any view.
pub fn max_contained_ucq_plan_catalog(
    query: &Program,
    answer: &Symbol,
    catalog: &CompiledCatalog,
) -> Result<Ucq, RelativeError> {
    max_contained_ucq_plan_with(query, answer, Planner::Catalog(catalog))
}

fn max_contained_ucq_plan_with(
    query: &Program,
    answer: &Symbol,
    planner: Planner<'_>,
) -> Result<Ucq, RelativeError> {
    let _span = qc_obs::span("plan_construction");
    let plan = max_contained_ucq_plan_inner(query, answer, planner)?;
    qc_obs::count(qc_obs::Counter::PlanDisjuncts, plan.disjuncts.len() as u64);
    Ok(plan)
}

fn max_contained_ucq_plan_inner(
    query: &Program,
    answer: &Symbol,
    planner: Planner<'_>,
) -> Result<Ucq, RelativeError> {
    let views = planner.views();
    let unfolded = query.unfold(answer)?;
    if unfolded.is_comparison_free() {
        // Inverse rules → fn-elim → unfold (Example 2 → Example 3).
        let plan = eliminate_function_terms(&planner.inverse_plan(query))?;
        let mut ucq = match plan.unfold(answer) {
            Ok(u) => u,
            // Function-term elimination can prove the plan derives no
            // function-free answers at all (every specialization of the
            // answer rule dies): the plan is the empty union.
            Err(UnfoldError::UndefinedAnswer(_)) => {
                return Ok(Ucq::empty(unfolded.pred.as_str(), unfolded.arity))
            }
            Err(e) => return Err(e.into()),
        };
        // A query plan may only mention source relations: disjuncts that
        // kept a mediated-schema atom (no source covers it) can never
        // produce answers over a source instance.
        ucq.disjuncts.retain(|d| {
            d.subgoals
                .iter()
                .all(|a| views.source(a.pred.as_str()).is_some())
        });
        // Tidy: minimize each disjunct (unfolding a multi-subgoal view
        // produces one inverted atom per subgoal, which often collapses)
        // and drop subsumed disjuncts. Equivalence is preserved.
        for d in &mut ucq.disjuncts {
            *d = qc_containment::minimize(d);
        }
        if ucq.disjuncts.is_empty() {
            Ok(ucq)
        } else {
            Ok(qc_containment::minimize_union(&ucq))
        }
    } else if ucq_is_semi_interval(&unfolded) && views.is_semi_interval() {
        // Theorem 5.1's construction, per disjunct.
        let mut disjuncts = Vec::new();
        for d in &unfolded.disjuncts {
            let plan = semi_interval_plan(d, views);
            disjuncts.extend(plan.disjuncts);
        }
        if disjuncts.is_empty() {
            Ok(Ucq::empty(unfolded.pred.as_str(), unfolded.arity))
        } else {
            Ok(Ucq::new(disjuncts).expect("plans share the query head"))
        }
    } else {
        Err(RelativeError::Unsupported(
            "maximally-contained plans require a comparison-free or semi-interval contained query \
             (arbitrary comparisons in Q1 are an open problem, §6)"
                .into(),
        ))
    }
}

/// Decides relative containment `Q1 ⊑_V Q2` (Definition 2.4).
///
/// `q1`/`q2` are datalog programs with answer predicates `ans1`/`ans2`
/// of equal arity; `views` are the (incomplete, conjunctive) sources.
/// Dispatches to the decision procedure for the query class — see the
/// module docs for the case table.
pub fn relatively_contained(
    q1: &Program,
    ans1: &Symbol,
    q2: &Program,
    ans2: &Symbol,
    views: &LavSetting,
) -> Result<bool, RelativeError> {
    let _span = qc_obs::span("relative_containment");
    let q1_recursive = q1.dependency_graph().pred_in_cycle_reachable_from(ans1);
    let q2_recursive = q2.dependency_graph().pred_in_cycle_reachable_from(ans2);

    match (q1_recursive, q2_recursive) {
        (false, false) => {
            let p1 = max_contained_ucq_plan(q1, ans1, views)?;
            let p1_exp = {
                let _s = qc_obs::span("expansion");
                expand_ucq(&p1, views)
            };
            let u2 = q2.unfold(ans2)?;
            let _s = qc_obs::span("containment_check");
            Ok(ucq_contained(&p1_exp, &u2))
        }
        (true, false) => {
            // Theorem 3.2 (and the Thm 4.1 analogue): P1^exp ⊆ Q2 via the
            // type fixpoint — requires comparison-free inputs.
            if q1.has_comparisons() || q2.has_comparisons() || !views.is_comparison_free() {
                return Err(RelativeError::Unsupported(
                    "recursive relative containment requires comparison-free queries and views"
                        .into(),
                ));
            }
            let (p1, ans1_renamed) = {
                let _s = qc_obs::span("plan_construction");
                let p1 = eliminate_function_terms(&max_contained_plan(q1, views))?;
                sanitize_datalog_plan(&p1, views, ans1)
            };
            let p1_exp = {
                let _s = qc_obs::span("expansion");
                expand_program(&p1, views)
            };
            let u2 = q2.unfold(ans2)?;
            let _s = qc_obs::span("containment_check");
            Ok(datalog_contained_in_ucq(
                &p1_exp,
                &ans1_renamed,
                &u2,
                &FixpointBudget::default(),
            )?)
        }
        (false, true) => {
            // Theorem 3.2, other side: P1 is a UCQ over the sources;
            // freeze each disjunct and evaluate P2.
            if q1.has_comparisons() || q2.has_comparisons() || !views.is_comparison_free() {
                return Err(RelativeError::Unsupported(
                    "recursive relative containment requires comparison-free queries and views"
                        .into(),
                ));
            }
            let p1 = max_contained_ucq_plan(q1, ans1, views)?;
            let p2 = {
                let _s = qc_obs::span("plan_construction");
                eliminate_function_terms(&max_contained_plan(q2, views))?
            };
            let _s = qc_obs::span("containment_check");
            Ok(ucq_contained_in_datalog(
                &p1,
                &p2,
                ans2,
                &EvalOptions::default(),
            )?)
        }
        (true, true) => Err(RelativeError::Unsupported(
            "relative containment with two recursive queries reduces to containment of two \
             recursive datalog programs, which is undecidable [36]"
                .into(),
        )),
    }
}

/// What was proven before a resource limit cut a decision short.
///
/// Everything here is an **under-approximation** — sound partial progress,
/// never a guess. `partial_plan` is a union of disjuncts of `Q1`'s
/// maximally-contained plan whose expansions were each *proven* contained
/// in `Q2`; any subset of a maximally-contained plan is itself a contained
/// (just possibly not maximal) plan, so the partial plan is always safe to
/// execute.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partial {
    /// The limit that stopped the decision (stage, kind, consumed/limit).
    pub resource: qc_guard::ResourceError,
    /// Indices (into the maximally-contained plan's disjunct list, which
    /// is deterministic for a fixed input) of the disjuncts proven
    /// contained before the limit hit, in ascending order. Recording the
    /// *indices* rather than a count is what makes a `Partial` a
    /// well-defined checkpoint: a retry can skip exactly these disjuncts
    /// (see [`relatively_contained_verdict_resume`]).
    pub disjuncts_proven: Vec<usize>,
    /// Total plan disjuncts (0 when the plan itself was never built).
    pub disjuncts_total: usize,
    /// The proven-contained part of the maximally-contained plan, when
    /// any disjunct got that far.
    pub partial_plan: Option<Ucq>,
}

impl Partial {
    /// How many plan disjuncts were proven contained.
    pub fn disjuncts_contained(&self) -> usize {
        self.disjuncts_proven.len()
    }
}

/// An anytime relative-containment answer: definite whenever the
/// procedure ran to completion, [`Verdict::Unknown`] — with the sound
/// partial progress — when a [`qc_guard::Guard`] limit cut it short.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// `Q1 ⊑_V Q2` proven.
    Contained,
    /// A counterexample disjunct was found: `Q1 ⋢_V Q2`, definitely.
    NotContained,
    /// A resource limit stopped the decision; the payload says how far it
    /// got.
    Unknown(Partial),
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Verdict::Contained => write!(f, "contained"),
            Verdict::NotContained => write!(f, "not contained"),
            Verdict::Unknown(p) => {
                write!(f, "unknown — {}", p.resource)?;
                if p.disjuncts_total > 0 {
                    write!(
                        f,
                        " ({} of {} plan disjuncts proven contained)",
                        p.disjuncts_contained(),
                        p.disjuncts_total
                    )?;
                }
                Ok(())
            }
        }
    }
}

fn unknown(resource: qc_guard::ResourceError) -> Verdict {
    Verdict::Unknown(Partial {
        resource,
        disjuncts_proven: Vec::new(),
        disjuncts_total: 0,
        partial_plan: None,
    })
}

/// Anytime version of [`relatively_contained`]: runs the same decision
/// procedures under the installed [`qc_guard::Guard`] (if any) and turns
/// resource exhaustion into [`Verdict::Unknown`] carrying the sound
/// partial progress instead of an error. Genuine input/class errors still
/// surface as `Err`.
///
/// For nonrecursive `Q1`/`Q2` the per-disjunct containment checks run
/// individually, so a limit hitting midway still reports every disjunct
/// proven so far (and the corresponding partial contained plan). A
/// disjunct proven *not* contained is a definite refutation regardless of
/// any later exhaustion, so [`Verdict::NotContained`] is exact.
pub fn relatively_contained_verdict(
    q1: &Program,
    ans1: &Symbol,
    q2: &Program,
    ans2: &Symbol,
    views: &LavSetting,
) -> Result<Verdict, RelativeError> {
    relatively_contained_verdict_resume(q1, ans1, q2, ans2, views, &[])
}

/// [`relatively_contained_verdict`] resumed from a checkpoint: the plan
/// disjuncts whose indices appear in `proven_before` (as recorded by an
/// earlier run's [`Partial::disjuncts_proven`]) are taken as already
/// proven contained and skipped, so a retried request with a fresh budget
/// continues where it stopped instead of recomputing.
///
/// The maximally-contained plan's disjunct order is deterministic for a
/// fixed input, which is what makes the indices meaningful across runs.
/// Indices out of range for the rebuilt plan are ignored, so a stale or
/// foreign checkpoint degrades to extra work, never to unsoundness — but
/// callers are expected to key checkpoints by request (see `qc-serve`).
/// For recursive inputs the decision is monolithic and `proven_before` is
/// ignored.
pub fn relatively_contained_verdict_resume(
    q1: &Program,
    ans1: &Symbol,
    q2: &Program,
    ans2: &Symbol,
    views: &LavSetting,
    proven_before: &[usize],
) -> Result<Verdict, RelativeError> {
    relatively_contained_verdict_resume_checked(q1, ans1, q2, ans2, views, proven_before, None)
        .map(|(v, _)| v)
}

/// How a resume checkpoint fared against the rebuilt plan (see
/// [`relatively_contained_verdict_resume_checked`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResumeState {
    /// No checkpoint was supplied: a fresh run.
    Fresh,
    /// The checkpoint was applied; `skipped` disjuncts were taken as
    /// already proven.
    Applied {
        /// Disjunct checks skipped thanks to the checkpoint.
        skipped: usize,
    },
    /// The checkpoint claimed a plan shape the rebuilt plan contradicts
    /// (`expected` vs `actual` disjuncts); its proven set was discarded
    /// and the run recomputed from scratch.
    Rejected {
        /// `disjuncts_total` the checkpoint was cut against.
        expected: usize,
        /// Disjunct count of the plan rebuilt for this run.
        actual: usize,
    },
    /// The input is recursive: the decision is monolithic, so per-disjunct
    /// checkpoints do not apply.
    Monolithic,
}

/// [`relatively_contained_verdict_resume`] with explicit checkpoint
/// validation: when `expected_total` is given and disagrees with the
/// rebuilt plan's disjunct count, the checkpoint is *rejected* — the
/// proven set is discarded, the run recomputes everything, and the
/// returned [`ResumeState::Rejected`] carries both counts so the caller
/// can surface the stale checkpoint instead of silently eating it.
///
/// The plan's disjunct order is deterministic for a fixed input, so a
/// total mismatch can only mean the checkpoint was cut against different
/// inputs (or a different engine version) than this run — exactly the
/// case where trusting its indices would silently skip the wrong
/// disjuncts' work (still sound, but no longer the progress the caller
/// thinks it has).
#[allow(clippy::too_many_arguments)]
pub fn relatively_contained_verdict_resume_checked(
    q1: &Program,
    ans1: &Symbol,
    q2: &Program,
    ans2: &Symbol,
    views: &LavSetting,
    proven_before: &[usize],
    expected_total: Option<usize>,
) -> Result<(Verdict, ResumeState), RelativeError> {
    relatively_contained_verdict_resume_impl(
        q1,
        ans1,
        q2,
        ans2,
        Planner::Views(views),
        proven_before,
        expected_total,
    )
}

/// [`relatively_contained_verdict_resume_checked`] against a compiled
/// catalog: the maximally-contained plan draws its inverse rules from the
/// catalog's cached per-view blocks, so only the query-dependent stages
/// (fn-elim, unfolding, per-disjunct containment) run per call. The
/// verdict and the plan's disjunct order are identical to the plain
/// route for the same setting.
#[allow(clippy::too_many_arguments)]
pub fn relatively_contained_verdict_resume_checked_catalog(
    q1: &Program,
    ans1: &Symbol,
    q2: &Program,
    ans2: &Symbol,
    catalog: &CompiledCatalog,
    proven_before: &[usize],
    expected_total: Option<usize>,
) -> Result<(Verdict, ResumeState), RelativeError> {
    relatively_contained_verdict_resume_impl(
        q1,
        ans1,
        q2,
        ans2,
        Planner::Catalog(catalog),
        proven_before,
        expected_total,
    )
}

#[allow(clippy::too_many_arguments)]
fn relatively_contained_verdict_resume_impl(
    q1: &Program,
    ans1: &Symbol,
    q2: &Program,
    ans2: &Symbol,
    planner: Planner<'_>,
    proven_before: &[usize],
    expected_total: Option<usize>,
) -> Result<(Verdict, ResumeState), RelativeError> {
    let _span = qc_obs::span("relative_containment_verdict");
    let views = planner.views();
    let q1_recursive = q1.dependency_graph().pred_in_cycle_reachable_from(ans1);
    let q2_recursive = q2.dependency_graph().pred_in_cycle_reachable_from(ans2);

    if q1_recursive || q2_recursive {
        // The recursive routes decide through one monolithic fixpoint or
        // evaluation; exhaustion cannot be attributed to individual
        // disjuncts, so the anytime answer carries no partial plan.
        return match run_guarded(|| relatively_contained(q1, ans1, q2, ans2, views)) {
            Ok(true) => Ok((Verdict::Contained, ResumeState::Monolithic)),
            Ok(false) => Ok((Verdict::NotContained, ResumeState::Monolithic)),
            Err(e) => match e.resource() {
                Some(r) => Ok((unknown(r.clone()), ResumeState::Monolithic)),
                None => Err(e),
            },
        };
    }

    let u2 = q2.unfold(ans2)?;
    let p1 = match run_guarded(|| max_contained_ucq_plan_with(q1, ans1, planner)) {
        Ok(p) => p,
        Err(e) => {
            return match e.resource() {
                // The plan never got built, so checkpoint validity is
                // unknowable this run; report Fresh (nothing was skipped).
                Some(r) => Ok((unknown(r.clone()), ResumeState::Fresh)),
                None => Err(e),
            };
        }
    };
    let total = p1.disjuncts.len();
    let (proven_before, state) = match expected_total {
        Some(expected) if expected != total => (
            // A shape mismatch means the indices were cut against a
            // different plan: discard them (recompute; sound either way)
            // and tell the caller the checkpoint was rejected.
            &[][..],
            ResumeState::Rejected {
                expected,
                actual: total,
            },
        ),
        _ if proven_before.is_empty() => (proven_before, ResumeState::Fresh),
        _ => (
            proven_before,
            ResumeState::Applied {
                skipped: proven_before.iter().filter(|&&i| i < total).count(),
            },
        ),
    };
    let mut proven: Vec<qc_datalog::ConjunctiveQuery> = Vec::new();
    let mut proven_ix: Vec<usize> = Vec::new();
    for (ix, d) in p1.disjuncts.iter().enumerate() {
        if proven_before.contains(&ix) {
            proven.push(d.clone());
            proven_ix.push(ix);
            continue;
        }
        let exp = {
            let _s = qc_obs::span("expansion");
            expand_cq(d, views)
        }
        .ok_or_else(|| RelativeError::Unsupported("plan disjunct does not expand".into()))?;
        let _s = qc_obs::span("containment_check");
        match qc_guard::guarded(|| qc_containment::cq_contained_in_ucq(&exp, &u2)) {
            Ok(true) => {
                // Fresh proof work (checkpoint-skipped disjuncts are not
                // counted): the churn suite's measure that a one-view
                // delta re-proves only affected disjuncts.
                qc_obs::count(qc_obs::Counter::PlanDisjunctsProved, 1);
                proven.push(d.clone());
                proven_ix.push(ix);
            }
            Ok(false) => return Ok((Verdict::NotContained, state)),
            Err(r) => {
                let partial_plan = (!proven.is_empty())
                    .then(|| Ucq::new(proven).expect("disjuncts share the query head"));
                return Ok((
                    Verdict::Unknown(Partial {
                        resource: r,
                        disjuncts_proven: proven_ix,
                        disjuncts_total: total,
                        partial_plan,
                    }),
                    state,
                ));
            }
        }
    }
    Ok((Verdict::Contained, state))
}

/// Decides relative containment with binding patterns, `Q1 ⊑_{V,B} Q2`
/// (Definition 4.5, Theorems 4.1/4.2): `P1` is the recursive executable
/// plan, and `P1^exp ⊆ Q2` is decided by the type fixpoint.
///
/// Adornments are taken from the sources' [`crate::schema::Adornment`]s
/// (absent adornments mean all-free).
pub fn relatively_contained_bp(
    q1: &Program,
    ans1: &Symbol,
    q2: &Program,
    ans2: &Symbol,
    views: &LavSetting,
) -> Result<bool, RelativeError> {
    let _span = qc_obs::span("relative_containment_bp");
    if q1.has_comparisons() || q2.has_comparisons() || !views.is_comparison_free() {
        return Err(RelativeError::Unsupported(
            "binding-pattern relative containment requires comparison-free queries and views"
                .into(),
        ));
    }
    let q2_recursive = q2.dependency_graph().pred_in_cycle_reachable_from(ans2);
    if q2_recursive {
        return Err(RelativeError::Unsupported(
            "Theorem 4.2 requires the containing query to be nonrecursive".into(),
        ));
    }
    // Definition 4.5 precondition.
    let mut lhs_consts = q1.consts();
    lhs_consts.extend(views.consts());
    let mut rhs_consts = q2.consts();
    rhs_consts.extend(views.consts());
    if !lhs_consts.is_subset(&rhs_consts) {
        return Err(RelativeError::ConstantsPrecondition);
    }

    let (p1, ans1_renamed) = {
        let _s = qc_obs::span("plan_construction");
        let p1 = eliminate_function_terms(&crate::binding::executable_plan(q1, views))?;
        sanitize_datalog_plan(&p1, views, ans1)
    };
    let p1_exp = {
        let _s = qc_obs::span("expansion");
        expand_program(&p1, views)
    };
    let u2 = q2.unfold(ans2)?;
    let _s = qc_obs::span("containment_check");
    Ok(datalog_contained_in_ucq(
        &p1_exp,
        &ans1_renamed,
        &u2,
        &FixpointBudget::default(),
    )?)
}

/// A witness explaining why `Q1 ⋢_V Q2`: a conjunctive query plan over
/// the sources that is sound for `Q1` but whose expansion is not
/// contained in `Q2` — i.e. a concrete way to retrieve certain answers of
/// `Q1` that `Q2` cannot guarantee.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NonContainmentWitness {
    /// The offending conjunctive plan (a disjunct of `Q1`'s
    /// maximally-contained plan).
    pub plan: qc_datalog::ConjunctiveQuery,
    /// Its expansion over the mediated schema.
    pub expansion: qc_datalog::ConjunctiveQuery,
}

impl fmt::Display for NonContainmentWitness {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "witness plan:      {}", self.plan.tidy_names().to_rule())?;
        write!(
            f,
            "expands to:        {}  (not contained in the second query)",
            self.expansion.tidy_names().to_rule()
        )
    }
}

/// Like [`relatively_contained`] for nonrecursive queries, but on failure
/// returns the witness plan disjunct — the paper's §1 use case of
/// "familiarizing a user with the coverage and limitations" of the
/// sources, made concrete.
pub fn relatively_contained_witness(
    q1: &Program,
    ans1: &Symbol,
    q2: &Program,
    ans2: &Symbol,
    views: &LavSetting,
) -> Result<Result<(), NonContainmentWitness>, RelativeError> {
    let p1 = max_contained_ucq_plan(q1, ans1, views)?;
    let u2 = q2.unfold(ans2)?;
    for d in &p1.disjuncts {
        let exp = crate::expansion::expand_cq(d, views)
            .ok_or_else(|| RelativeError::Unsupported("plan disjunct does not expand".into()))?;
        if !qc_containment::cq_contained_in_ucq(&exp, &u2) {
            return Ok(Err(NonContainmentWitness {
                plan: d.clone(),
                expansion: exp,
            }));
        }
    }
    Ok(Ok(()))
}

/// Like [`relatively_contained_bp`], but on failure additionally searches
/// (bounded) for a counterexample *expansion*: a concrete proof tree of
/// `Q1`'s executable plan whose conjunctive reading is not contained in
/// `Q2`. Returns `Ok(Err(None))` when the containment fails but the
/// witness search exhausted its budget.
pub fn relatively_contained_bp_witness(
    q1: &Program,
    ans1: &Symbol,
    q2: &Program,
    ans2: &Symbol,
    views: &LavSetting,
) -> Result<Result<(), Option<qc_datalog::ConjunctiveQuery>>, RelativeError> {
    if relatively_contained_bp(q1, ans1, q2, ans2, views)? {
        return Ok(Ok(()));
    }
    let p1 = eliminate_function_terms(&crate::binding::executable_plan(q1, views))?;
    let (p1, ans1_renamed) = sanitize_datalog_plan(&p1, views, ans1);
    let p1_exp = expand_program(&p1, views);
    let u2 = q2.unfold(ans2)?;
    let witness = qc_containment::witness::find_counterexample_expansion(
        &p1_exp,
        &ans1_renamed,
        &u2,
        &qc_containment::witness::WitnessBudget::default(),
    );
    Ok(Err(witness))
}

/// Decides relative equivalence `Q1 ≡_V Q2` (both containments).
pub fn relatively_equivalent(
    q1: &Program,
    ans1: &Symbol,
    q2: &Program,
    ans2: &Symbol,
    views: &LavSetting,
) -> Result<bool, RelativeError> {
    Ok(relatively_contained(q1, ans1, q2, ans2, views)?
        && relatively_contained(q2, ans2, q1, ans1, views)?)
}

/// How a relative containment holds — the distinction the paper's
/// introduction motivates: "the system can tell the user whether the
/// answers to two queries Q1 and Q2 are the same because the queries are
/// equivalent, or because they are equivalent for the current available
/// sources."
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ContainmentKind {
    /// `Q1 ⊆ Q2` holds classically (hence relative to any sources).
    Classical,
    /// `Q1 ⊑_V Q2` holds only because of the available sources.
    OnlyRelative,
    /// `Q1 ⋢_V Q2`.
    No,
}

impl std::fmt::Display for ContainmentKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ContainmentKind::Classical => write!(f, "contained (classically)"),
            ContainmentKind::OnlyRelative => {
                write!(f, "contained (only relative to the available sources)")
            }
            ContainmentKind::No => write!(f, "not contained"),
        }
    }
}

/// Classifies the containment of `Q1` in `Q2` relative to `views`.
///
/// Both queries must be nonrecursive (classical containment of the
/// unfoldings is checked first; the relative check runs only when the
/// classical one fails).
pub fn explain_containment(
    q1: &Program,
    ans1: &Symbol,
    q2: &Program,
    ans2: &Symbol,
    views: &LavSetting,
) -> Result<ContainmentKind, RelativeError> {
    let _span = qc_obs::span("explain_containment");
    let classical = {
        let _s = qc_obs::span("classical_check");
        let u1 = q1.unfold(ans1)?;
        let u2 = q2.unfold(ans2)?;
        ucq_contained(&u1, &u2)
    };
    if classical {
        return Ok(ContainmentKind::Classical);
    }
    if relatively_contained(q1, ans1, q2, ans2, views)? {
        Ok(ContainmentKind::OnlyRelative)
    } else {
        Ok(ContainmentKind::No)
    }
}

/// The alternative decision route of Theorem 3.1's statement: compare the
/// two maximally-contained UCQ plans directly over the source vocabulary.
/// Valid for nonrecursive queries; exposed for cross-validation (the
/// property tests check it agrees with [`relatively_contained`]) and for
/// the E4/E9 benchmarks.
pub fn relatively_contained_by_plans(
    q1: &Program,
    ans1: &Symbol,
    q2: &Program,
    ans2: &Symbol,
    views: &LavSetting,
) -> Result<bool, RelativeError> {
    let p1 = max_contained_ucq_plan(q1, ans1, views)?;
    let p2 = max_contained_ucq_plan(q2, ans2, views)?;
    Ok(ucq_contained(&p1, &p2))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::example1_sources;
    use qc_datalog::parse_program;

    fn prog(s: &str) -> Program {
        parse_program(s).unwrap()
    }

    fn sym(s: &str) -> Symbol {
        Symbol::new(s)
    }

    fn q1() -> Program {
        prog("q1(CarNo, Review) :- CarDesc(CarNo, Model, C, Y), Review(Model, Review, Rating).")
    }
    fn q2() -> Program {
        prog("q2(CarNo, Review) :- CarDesc(CarNo, Model, C, Y), Review(Model, Review, 10).")
    }
    fn q3() -> Program {
        prog(
            "q3(CarNo, Review) :- CarDesc(CarNo, Model, C, Y), Review(Model, Review, 10), Y < 1970.",
        )
    }

    #[test]
    fn example1_q1_equivalent_to_q2_relative_to_sources() {
        // "because reviews are only available for top-rated cars, Q1 is
        //  contained in Q2 relative to the sources, and in fact the two
        //  queries return the same certain answers."
        let views = example1_sources();
        assert!(relatively_contained(&q1(), &sym("q1"), &q2(), &sym("q2"), &views).unwrap());
        assert!(relatively_contained(&q2(), &sym("q2"), &q1(), &sym("q1"), &views).unwrap());
        assert!(relatively_equivalent(&q1(), &sym("q1"), &q2(), &sym("q2"), &views).unwrap());
    }

    #[test]
    fn example1_q1_not_contained_in_q3() {
        // "Q1 is not contained in Q3 relative to the sources, because it
        //  is possible to retrieve reviews of red cars made after 1970."
        let views = example1_sources();
        assert!(!relatively_contained(&q1(), &sym("q1"), &q3(), &sym("q3"), &views).unwrap());
        // Q3 ⊑ Q1 of course holds (classically already).
        assert!(relatively_contained(&q3(), &sym("q3"), &q1(), &sym("q1"), &views).unwrap());
    }

    #[test]
    fn example1_dropping_redcars_flips_the_answer() {
        // "If the RedCars source were not available, then Q1 would be
        //  contained in Q3 relative to the available sources."
        let views = example1_sources().without("RedCars");
        assert!(relatively_contained(&q1(), &sym("q1"), &q3(), &sym("q3"), &views).unwrap());
    }

    #[test]
    fn classical_containment_implies_relative() {
        let views = example1_sources();
        // Q2 ⊆ Q1 classically, hence relatively.
        assert!(relatively_contained(&q2(), &sym("q2"), &q1(), &sym("q1"), &views).unwrap());
        // Also with an empty view set (both plans empty).
        let empty = LavSetting::default();
        assert!(relatively_contained(&q2(), &sym("q2"), &q1(), &sym("q1"), &empty).unwrap());
        // With no views everything is relatively contained in everything
        // (no certain answers at all).
        assert!(relatively_contained(&q1(), &sym("q1"), &q2(), &sym("q2"), &empty).unwrap());
    }

    #[test]
    fn plan_comparison_route_agrees_on_example1() {
        let views = example1_sources();
        let pairs = [
            (q1(), "q1", q2(), "q2"),
            (q2(), "q2", q1(), "q1"),
            (q3(), "q3", q2(), "q2"),
            (q2(), "q2", q3(), "q3"),
            (q1(), "q1", q3(), "q3"),
            (q3(), "q3", q1(), "q1"),
        ];
        for (a, an, b, bn) in pairs {
            let via_exp = relatively_contained(&a, &sym(an), &b, &sym(bn), &views).unwrap();
            let via_plans =
                relatively_contained_by_plans(&a, &sym(an), &b, &sym(bn), &views).unwrap();
            assert_eq!(via_exp, via_plans, "{an} vs {bn}");
        }
    }

    #[test]
    fn witness_pinpoints_the_offending_plan() {
        // Q1 ⋢ Q3 "because it is possible to retrieve reviews of red cars
        // made after 1970" — the witness must be the RedCars plan.
        let views = example1_sources();
        let got =
            relatively_contained_witness(&q1(), &sym("q1"), &q3(), &sym("q3"), &views).unwrap();
        let w = got.expect_err("not contained");
        assert!(w.plan.subgoals.iter().any(|a| a.pred == "RedCars"), "{w}");
        // The witness agrees with the boolean decision.
        assert!(!relatively_contained(&q1(), &sym("q1"), &q3(), &sym("q3"), &views).unwrap());
        // A holding containment has no witness.
        let ok =
            relatively_contained_witness(&q1(), &sym("q1"), &q2(), &sym("q2"), &views).unwrap();
        assert!(ok.is_ok());
        // Witness agrees with the decision on random workloads.
        use crate::workloads::{query_program, random_query, random_views, Shape};
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..10 {
            let a = random_query(Shape::Chain, 2, 2, &mut rng);
            let b = random_query(Shape::Chain, 2, 2, &mut rng);
            let v = random_views(3, 2, &mut rng);
            let dec = relatively_contained(
                &query_program(&a),
                &sym("q"),
                &query_program(&b),
                &sym("q"),
                &v,
            )
            .unwrap();
            let wit = relatively_contained_witness(
                &query_program(&a),
                &sym("q"),
                &query_program(&b),
                &sym("q"),
                &v,
            )
            .unwrap();
            assert_eq!(dec, wit.is_ok());
        }
    }

    #[test]
    fn explain_distinguishes_classical_from_relative() {
        let views = example1_sources();
        // Q2 ⊆ Q1 classically.
        assert_eq!(
            explain_containment(&q2(), &sym("q2"), &q1(), &sym("q1"), &views).unwrap(),
            ContainmentKind::Classical
        );
        // Q1 ⊑ Q2 only because of the sources.
        assert_eq!(
            explain_containment(&q1(), &sym("q1"), &q2(), &sym("q2"), &views).unwrap(),
            ContainmentKind::OnlyRelative
        );
        // Q1 ⋢ Q3 either way.
        assert_eq!(
            explain_containment(&q1(), &sym("q1"), &q3(), &sym("q3"), &views).unwrap(),
            ContainmentKind::No
        );
        // Dropping RedCars turns the last into OnlyRelative.
        assert_eq!(
            explain_containment(
                &q1(),
                &sym("q1"),
                &q3(),
                &sym("q3"),
                &views.without("RedCars")
            )
            .unwrap(),
            ContainmentKind::OnlyRelative
        );
    }

    #[test]
    fn recursive_contained_query() {
        // Q1: transitive closure over a mediated edge; Q2: "some chain of
        // length 1 or 2"... containment fails; but TC ⊑ "connected to
        // something" holds.
        let views = LavSetting::parse(&["V(X, Y) :- edge(X, Y)."]).unwrap();
        let tc = prog("t(X, Y) :- edge(X, Y). t(X, Z) :- t(X, Y), edge(Y, Z).");
        let some = prog("s(X, Y) :- edge(X, A), edge(B, Y).");
        assert!(relatively_contained(&tc, &sym("t"), &some, &sym("s"), &views).unwrap());
        let direct = prog("d(X, Y) :- edge(X, Y).");
        assert!(!relatively_contained(&tc, &sym("t"), &direct, &sym("d"), &views).unwrap());
        // Other side: nonrecursive ⊑ recursive.
        let two = prog("w(X, Z) :- edge(X, Y), edge(Y, Z).");
        assert!(relatively_contained(&two, &sym("w"), &tc, &sym("t"), &views).unwrap());
        assert!(!relatively_contained(&direct, &sym("d"), &two, &sym("w"), &views).unwrap());
    }

    #[test]
    fn recursive_both_rejected() {
        let views = LavSetting::parse(&["V(X, Y) :- edge(X, Y)."]).unwrap();
        let tc = prog("t(X, Y) :- edge(X, Y). t(X, Z) :- t(X, Y), edge(Y, Z).");
        assert!(matches!(
            relatively_contained(&tc, &sym("t"), &tc, &sym("t"), &views),
            Err(RelativeError::Unsupported(_))
        ));
    }

    #[test]
    fn hidden_column_makes_queries_equivalent() {
        // The only source projects away p's second column, so q(X) :-
        // p(X, Y) and q'(X) :- p(X, X)?? — no: use a source that only
        // guarantees existence: v(X) :- p(X, Y). Then q_pair(X) :- p(X, Y)
        // and q_diag... certain answers of both are v's column... diag is
        // not implied. Instead: q(X) :- p(X, Y), r(Y) vs q'(X) :- p(X, Y):
        // with only v available, neither query has certain answers beyond
        // none for q; q' has the v column.
        let views = LavSetting::parse(&["v(X) :- p(X, Y)."]).unwrap();
        let qa = prog("qa(X) :- p(X, Y), r(Y).");
        let qb = prog("qb(X) :- p(X, Y).");
        // qa has NO certain answers ever (r unseen): qa ⊑ qb.
        assert!(relatively_contained(&qa, &sym("qa"), &qb, &sym("qb"), &views).unwrap());
        // qb does have certain answers: qb ⋢ qa.
        assert!(!relatively_contained(&qb, &sym("qb"), &qa, &sym("qa"), &views).unwrap());
    }
}
