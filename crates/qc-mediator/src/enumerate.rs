//! The literal Theorem 3.1 procedure: bounded enumeration of candidate
//! conjunctive query plans.
//!
//! The proof of Theorem 3.1 decides `Q1 ⊑_V Q2` by quantifying over every
//! conjunctive plan of at most `n` subgoals whose expansion is contained
//! in `Q1` (by \[31\] it suffices to consider plans no longer than the
//! query) — the Π₂ᵖ structure is a ∀∃ alternation over such candidates.
//! This module implements that enumeration *literally*: generate every
//! candidate plan over the view vocabulary up to a size bound (a choice of
//! view atoms plus a set partition of their argument positions, optionally
//! refined with constants), keep the sound ones, and return their union.
//!
//! It is exponential and only usable on small inputs, but it is a third,
//! independent construction of the maximally-contained plan — the property
//! tests pit it against the inverse-rules and MiniCon routes.

use qc_containment::{cq_contained_memo, engine, minimize};
use qc_datalog::{Atom, ConjunctiveQuery, Const, Term, Ucq};

use crate::expansion::expand_cq;
use crate::schema::LavSetting;

/// Limits for the enumeration.
#[derive(Debug, Clone, Copy)]
pub struct EnumerationLimits {
    /// Maximum number of view atoms per candidate (the paper's `n` — the
    /// subgoal count of the query — when `None`).
    pub max_atoms: Option<usize>,
    /// Include candidates that pin argument blocks to constants of
    /// `Q ∪ V`.
    pub with_constants: bool,
    /// Hard cap on generated candidates (guards the exponential blowup).
    pub max_candidates: usize,
}

impl Default for EnumerationLimits {
    fn default() -> EnumerationLimits {
        EnumerationLimits {
            max_atoms: None,
            with_constants: true,
            max_candidates: 2_000_000,
        }
    }
}

/// Builds the maximally-contained plan of a conjunctive query by literal
/// candidate enumeration (the Theorem 3.1 proof procedure). Comparison
/// predicates in the query/views are handled by the dense-order soundness
/// check, but candidates themselves are comparison-free — use the
/// MiniCon-based [`crate::minicon::semi_interval_plan`] when the *plan*
/// needs constraints.
///
/// Returns `None` if the candidate cap was hit.
pub fn enumerated_plan(
    query: &ConjunctiveQuery,
    views: &LavSetting,
    limits: &EnumerationLimits,
) -> Option<Ucq> {
    let n = limits.max_atoms.unwrap_or_else(|| query.size().max(1));
    let head_arity = query.head.arity();

    // Constants available to candidates: those of Q ∪ V.
    let mut consts: Vec<Const> = query.consts().into_iter().collect();
    if limits.with_constants {
        for c in views.consts() {
            if !consts.contains(&c) {
                consts.push(c);
            }
        }
    } else {
        consts.clear();
    }

    let mut sound: Vec<ConjunctiveQuery> = Vec::new();
    // Candidates are generated in a deterministic order and buffered; each
    // full batch is soundness-checked through [`flush_candidates`] (memoized
    // containment, fanned out across worker threads when the engine's
    // parallelism allows). Verdicts are consumed in candidate order, so the
    // plan is identical for any parallelism.
    let mut pending: Vec<ConjunctiveQuery> = Vec::new();
    let mut budget = limits.max_candidates;

    // Choose a multiset of views of each size 1..=n (by non-decreasing
    // index to avoid permutations of the same multiset).
    let nviews = views.sources.len();
    let mut stack: Vec<Vec<usize>> = (0..nviews).map(|i| vec![i]).collect();
    while let Some(combo) = stack.pop() {
        // Extend later (depth-first over multiset sizes).
        if combo.len() < n {
            for j in *combo.last().expect("nonempty")..nviews {
                let mut c2 = combo.clone();
                c2.push(j);
                stack.push(c2);
            }
        }
        // Argument positions of this combo.
        let arities: Vec<usize> = combo
            .iter()
            .map(|&i| views.sources[i].view.head.arity())
            .collect();
        let total: usize = arities.iter().sum();
        if total == 0 && head_arity > 0 {
            continue;
        }
        // Enumerate set partitions of the positions; each block becomes a
        // variable or (optionally) a constant; then choose head arguments
        // among blocks/constants.
        if !enumerate_partitions(total, &mut |block_of, nblocks| {
            // Block value assignment: variable, or each constant.
            // Represent choice per block: 0 = variable, 1.. = const idx+1.
            let mut choice = vec![0usize; nblocks];
            loop {
                // One work unit per candidate generated; `trip` unwinds to
                // the nearest `qc_guard::guarded` boundary (the built-in
                // `max_candidates` cap below stays a `None` return).
                qc_guard::trip(qc_guard::stage::ENUMERATION, 1);
                budget = match budget.checked_sub(1) {
                    Some(b) => b,
                    None => return false,
                };
                // Build the candidate body.
                let term_of_block = |b: usize| -> Term {
                    match choice[b] {
                        0 => Term::var(format!("B{b}")),
                        k => Term::Const(consts[k - 1]),
                    }
                };
                let mut body = Vec::new();
                let mut pos = 0usize;
                for (ci, &vi) in combo.iter().enumerate() {
                    let arity = arities[ci];
                    let args: Vec<Term> = (0..arity)
                        .map(|k| term_of_block(block_of[pos + k]))
                        .collect();
                    body.push(Atom {
                        pred: views.sources[vi].name,
                        args,
                    });
                    pos += arity;
                }
                // Head choices: each head position picks a variable block.
                // (A constant head argument cannot match the query's head
                // variables under a containment mapping unless the query
                // pins them — covered by variable blocks bound to the
                // same candidate anyway, so we only enumerate blocks.)
                let var_blocks: Vec<usize> = (0..nblocks).filter(|b| choice[*b] == 0).collect();
                if head_arity == 0 {
                    pending.push(make_candidate(query, Vec::new(), &body));
                    if pending.len() >= CHECK_BATCH {
                        flush_candidates(&mut pending, query, views, &mut sound);
                    }
                } else if !var_blocks.is_empty() {
                    let mut head_sel = vec![0usize; head_arity];
                    loop {
                        let head_args: Vec<Term> = head_sel
                            .iter()
                            .map(|&k| Term::var(format!("B{}", var_blocks[k])))
                            .collect();
                        pending.push(make_candidate(query, head_args, &body));
                        if pending.len() >= CHECK_BATCH {
                            flush_candidates(&mut pending, query, views, &mut sound);
                        }
                        // Odometer over head selections.
                        let mut k = 0;
                        loop {
                            if k == head_arity {
                                break;
                            }
                            head_sel[k] += 1;
                            if head_sel[k] < var_blocks.len() {
                                break;
                            }
                            head_sel[k] = 0;
                            k += 1;
                        }
                        if k == head_arity {
                            break;
                        }
                    }
                }
                // Odometer over block choices.
                let mut k = 0;
                loop {
                    if k == nblocks {
                        break;
                    }
                    choice[k] += 1;
                    if choice[k] <= consts.len() {
                        break;
                    }
                    choice[k] = 0;
                    k += 1;
                }
                if k == nblocks {
                    break;
                }
            }
            true
        }) {
            return None; // budget exhausted
        }
    }

    flush_candidates(&mut pending, query, views, &mut sound);

    // Drop candidates subsumed by another sound candidate.
    Some(if sound.is_empty() {
        Ucq::empty(query.head.pred.as_str(), head_arity)
    } else {
        qc_containment::minimize_union(&Ucq::new(sound).expect("candidates share the query head"))
    })
}

/// Candidates buffered between soundness-check batches.
const CHECK_BATCH: usize = 1024;

/// Assembles a candidate plan from a head/body choice.
fn make_candidate(
    query: &ConjunctiveQuery,
    head_args: Vec<Term>,
    body: &[Atom],
) -> ConjunctiveQuery {
    ConjunctiveQuery::new(
        Atom {
            pred: query.head.pred,
            args: head_args,
        },
        body.to_vec(),
        Vec::new(),
    )
}

/// Soundness-checks a batch of candidates — expansion plus memoized
/// containment in the query, fanned out across worker threads when the
/// engine's parallelism allows — then inserts the sound ones (minimized,
/// deduped) in candidate order. Clears the buffer.
fn flush_candidates(
    pending: &mut Vec<ConjunctiveQuery>,
    query: &ConjunctiveQuery,
    views: &LavSetting,
    sound: &mut Vec<ConjunctiveQuery>,
) {
    if pending.is_empty() {
        return;
    }
    let verdicts = engine::parallel_map(pending, |c| {
        expand_cq(c, views).is_some_and(|exp| cq_contained_memo(&exp, query))
    });
    for (c, ok) in pending.iter().zip(verdicts) {
        if ok {
            let min = minimize(c);
            if !sound.contains(&min) {
                sound.push(min);
            }
        }
    }
    pending.clear();
}

/// Enumerates set partitions of `0..n` via restricted growth strings.
/// The callback receives (block index per position, number of blocks) and
/// returns `false` to abort. Returns `false` if aborted.
fn enumerate_partitions(n: usize, f: &mut impl FnMut(&[usize], usize) -> bool) -> bool {
    if n == 0 {
        return f(&[], 0);
    }
    let mut rgs = vec![0usize; n];
    loop {
        let nblocks = rgs.iter().copied().max().unwrap_or(0) + 1;
        if !f(&rgs, nblocks) {
            return false;
        }
        // Next restricted growth string.
        let mut i = n;
        loop {
            if i == 1 {
                return true; // done
            }
            i -= 1;
            let max_prefix = rgs[..i].iter().copied().max().unwrap_or(0);
            if rgs[i] <= max_prefix {
                rgs[i] += 1;
                for r in rgs.iter_mut().skip(i + 1) {
                    *r = 0;
                }
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::minicon::minicon_rewritings;
    use qc_containment::cq::ucq_equivalent;
    use qc_datalog::parse_query;

    #[test]
    fn partitions_counted_by_bell_numbers() {
        for (n, bell) in [(1usize, 1usize), (2, 2), (3, 5), (4, 15)] {
            let mut count = 0;
            enumerate_partitions(n, &mut |_, _| {
                count += 1;
                true
            });
            assert_eq!(count, bell, "B({n})");
        }
    }

    #[test]
    fn enumeration_matches_minicon_on_simple_cases() {
        let cases: Vec<(&str, Vec<&str>)> = vec![
            (
                "q(X) :- p(X, Y).",
                vec!["v0(A, B) :- p(A, B).", "v1(A) :- p(A, B)."],
            ),
            ("q(X, Z) :- p(X, Y), p(Y, Z).", vec!["v0(A, B) :- p(A, B)."]),
            (
                "q(X) :- p(X, Y), r(Y).",
                vec!["v0(A) :- p(A, B), r(B).", "v1(A, B) :- p(A, B)."],
            ),
        ];
        for (qs, vs) in cases {
            let q = parse_query(qs).unwrap();
            let views = LavSetting::parse(&vs).unwrap();
            let enumerated =
                enumerated_plan(&q, &views, &EnumerationLimits::default()).expect("within budget");
            let mc = minicon_rewritings(&q, &views);
            assert!(
                ucq_equivalent(&enumerated, &mc),
                "{qs}:\nenumerated: {enumerated}\nminicon: {mc}"
            );
        }
    }

    #[test]
    fn enumeration_finds_constant_refinements() {
        // The only sound plan pins the view's output to the constant.
        let q = parse_query("q(X) :- p(X, 10).").unwrap();
        let views = LavSetting::parse(&["v(A, B) :- p(A, B)."]).unwrap();
        let enumerated =
            enumerated_plan(&q, &views, &EnumerationLimits::default()).expect("within budget");
        assert_eq!(enumerated.disjuncts.len(), 1, "{enumerated}");
        let d = &enumerated.disjuncts[0];
        assert!(d.subgoals[0].args.contains(&Term::int(10)), "{d}");
        // MiniCon agrees.
        let mc = minicon_rewritings(&q, &views);
        assert!(ucq_equivalent(&enumerated, &mc));
    }

    #[test]
    fn budget_abort_is_reported() {
        let q = parse_query("q(X) :- p(X, Y), p(Y, Z), p(Z, W).").unwrap();
        let views = LavSetting::parse(&[
            "v0(A, B) :- p(A, B).",
            "v1(A, B) :- p(B, A).",
            "v2(A) :- p(A, A).",
        ])
        .unwrap();
        let tiny = EnumerationLimits {
            max_candidates: 10,
            ..EnumerationLimits::default()
        };
        assert!(enumerated_plan(&q, &views, &tiny).is_none());
    }

    #[test]
    fn empty_when_views_cannot_answer() {
        let q = parse_query("q(X, Y) :- p(X, Y).").unwrap();
        let views = LavSetting::parse(&["v(A) :- p(A, B)."]).unwrap();
        let enumerated =
            enumerated_plan(&q, &views, &EnumerationLimits::default()).expect("within budget");
        assert!(enumerated.is_empty());
    }
}
