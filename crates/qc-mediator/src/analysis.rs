//! Source-set analysis: the paper's §1 motivation made executable.
//!
//! "An additional use in the data integration framework is to familiarize
//! a user with the coverage and limitations of a large set of available
//! data sources." This module answers the natural questions:
//!
//! * [`is_lossless`] — can the sources answer the query *completely*
//!   (the maximally-contained plan is equivalent to the query), or only
//!   partially?
//! * [`unused_sources`] — which sources contribute nothing to a query's
//!   plan (dropping them is provably harmless)?
//! * [`source_coverage`] — which sources appear in the query's plan at
//!   all?
//! * [`equivalence_classes`] — partition a set of queries by relative
//!   equivalence (queries the sources cannot distinguish).
//!
//! All analyses are over the *unrestricted* setting: binding-pattern
//! adornments are ignored here (reachability-aware analysis would need
//! the recursive executable plans of [`crate::binding`]).

use std::collections::BTreeSet;

use qc_containment::{cq_contained_in_ucq, ucq_contained};
use qc_datalog::{Program, Symbol};

use crate::expansion::expand_ucq;
use crate::relative::{max_contained_ucq_plan, relatively_equivalent, RelativeError};
use crate::schema::LavSetting;

/// Whether the sources answer the query *losslessly*: the
/// maximally-contained plan's expansion is equivalent to the query, so
/// the certain answers coincide with the real answers on every consistent
/// source instance (the plan is an exact rewriting).
///
/// `P1^exp ⊆ Q1` always holds (soundness); losslessness is the converse
/// `Q1 ⊆ P1^exp`.
pub fn is_lossless(
    query: &Program,
    answer: &Symbol,
    views: &LavSetting,
) -> Result<bool, RelativeError> {
    let plan = max_contained_ucq_plan(query, answer, views)?;
    let exp = expand_ucq(&plan, views);
    let q = query.unfold(answer)?;
    // Q ⊆ exp(P1): every disjunct of the query is covered by the
    // expansion union.
    Ok(q.disjuncts.iter().all(|d| cq_contained_in_ucq(d, &exp)))
}

/// The sources that actually appear in the query's maximally-contained
/// plan.
pub fn source_coverage(
    query: &Program,
    answer: &Symbol,
    views: &LavSetting,
) -> Result<BTreeSet<Symbol>, RelativeError> {
    let plan = max_contained_ucq_plan(query, answer, views)?;
    Ok(plan
        .disjuncts
        .iter()
        .flat_map(|d| d.subgoals.iter().map(|a| a.pred))
        .collect())
}

/// The sources whose removal leaves the query's certain answers unchanged
/// on **every** instance of the remaining sources: exactly those that
/// contribute no disjunct to the (minimized) maximally-contained plan.
///
/// Note that a *mirrored* source (same view definition under another
/// name) is **not** unused: source instances are independent under LAV,
/// so an instance may populate one mirror and not the other — dropping
/// either loses answers. Only sources the plan never touches are safe to
/// drop.
pub fn unused_sources(
    query: &Program,
    answer: &Symbol,
    views: &LavSetting,
) -> Result<Vec<Symbol>, RelativeError> {
    let used = source_coverage(query, answer, views)?;
    Ok(views
        .names()
        .into_iter()
        .filter(|n| !used.contains(n))
        .collect())
}

/// Sanity: dropping an unused source must keep the plan equivalent (used
/// by the tests; public because it is a useful assertion for callers).
pub fn dropping_preserves_plan(
    query: &Program,
    answer: &Symbol,
    views: &LavSetting,
    source: &str,
) -> Result<bool, RelativeError> {
    let full = max_contained_ucq_plan(query, answer, views)?;
    let reduced = max_contained_ucq_plan(query, answer, &views.without(source))?;
    Ok(ucq_contained(&full, &reduced) && ucq_contained(&reduced, &full))
}

/// Partitions queries into relative-equivalence classes: queries in one
/// class have identical certain answers on every source instance, so the
/// sources cannot distinguish them. Returns indexes into the input slice.
pub fn equivalence_classes(
    queries: &[(Program, Symbol)],
    views: &LavSetting,
) -> Result<Vec<Vec<usize>>, RelativeError> {
    let mut classes: Vec<Vec<usize>> = Vec::new();
    'next: for (i, (q, ans)) in queries.iter().enumerate() {
        for class in &mut classes {
            let (rq, rans) = &queries[class[0]];
            if relatively_equivalent(q, ans, rq, rans, views)? {
                class.push(i);
                continue 'next;
            }
        }
        classes.push(vec![i]);
    }
    Ok(classes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::example1_sources;
    use qc_datalog::parse_program;

    fn s(n: &str) -> Symbol {
        Symbol::new(n)
    }

    #[test]
    fn losslessness_basics() {
        // Identity view: lossless.
        let v = LavSetting::parse(&["V(X, Y) :- p(X, Y)."]).unwrap();
        let q = parse_program("q(X, Y) :- p(X, Y).").unwrap();
        assert!(is_lossless(&q, &s("q"), &v).unwrap());
        // Projection view: the join column is hidden — lossy for the
        // full-row query, lossless for the projection query.
        let vp = LavSetting::parse(&["V(X) :- p(X, Y)."]).unwrap();
        assert!(!is_lossless(&q, &s("q"), &vp).unwrap());
        let qp = parse_program("qp(X) :- p(X, Y).").unwrap();
        assert!(is_lossless(&qp, &s("qp"), &vp).unwrap());
    }

    #[test]
    fn example1_q2_is_lossless_q1_is_not() {
        // Reviews are only exported at rating 10: Q2 (rating pinned to
        // 10) is fully answerable when cars are red or antique... not
        // quite — CarDesc colors beyond red/antique years escape. Neither
        // is lossless; but the *plan-level* phenomenon of Example 1 is
        // that Q1 and Q2 have the same certain answers.
        let v = example1_sources();
        let q1 = parse_program(
            "q1(CarNo, Review) :- CarDesc(CarNo, Model, C, Y), Review(Model, Review, Rating).",
        )
        .unwrap();
        assert!(!is_lossless(&q1, &s("q1"), &v).unwrap());
        // A query the sources DO answer losslessly: red cars' numbers.
        let red = parse_program("red(C, M, Y) :- CarDesc(C, M, red, Y).").unwrap();
        assert!(is_lossless(&red, &s("red"), &v).unwrap());
    }

    #[test]
    fn coverage_and_redundancy() {
        let v = example1_sources();
        let q1 = parse_program(
            "q1(CarNo, Review) :- CarDesc(CarNo, Model, C, Y), Review(Model, Review, Rating).",
        )
        .unwrap();
        let cov = source_coverage(&q1, &s("q1"), &v).unwrap();
        assert!(cov.contains(&s("RedCars")));
        assert!(cov.contains(&s("AntiqueCars")));
        assert!(cov.contains(&s("CarAndDriver")));
        // Every source is used for Q1.
        assert!(unused_sources(&q1, &s("q1"), &v).unwrap().is_empty());

        // A mirrored source is NOT unused: instances are independent, so
        // each mirror can carry answers the other lacks.
        let mut v2 = v.clone();
        v2.sources.push(
            crate::schema::SourceDescription::parse(
                "RedCarsMirror(CarNo, Model, Year) :- CarDesc(CarNo, Model, red, Year).",
            )
            .unwrap(),
        );
        let unused = unused_sources(&q1, &s("q1"), &v2).unwrap();
        assert!(unused.is_empty(), "{unused:?}");

        // A source irrelevant to the query is unused, and dropping it
        // keeps the plan equivalent.
        let mut v3 = v.clone();
        v3.sources.push(
            crate::schema::SourceDescription::parse("Weather(City, Temp) :- weather(City, Temp).")
                .unwrap(),
        );
        let unused = unused_sources(&q1, &s("q1"), &v3).unwrap();
        assert_eq!(unused, vec![s("Weather")]);
        assert!(dropping_preserves_plan(&q1, &s("q1"), &v3, "Weather").unwrap());
        assert!(!dropping_preserves_plan(&q1, &s("q1"), &v3, "RedCars").unwrap());
    }

    #[test]
    fn equivalence_classes_of_example1() {
        let v = example1_sources();
        let queries = vec![
            (
                parse_program("q1(C, R) :- CarDesc(C, M, Col, Y), Review(M, R, S).").unwrap(),
                s("q1"),
            ),
            (
                parse_program("q2(C, R) :- CarDesc(C, M, Col, Y), Review(M, R, 10).").unwrap(),
                s("q2"),
            ),
            (
                parse_program("q3(C, R) :- CarDesc(C, M, Col, Y), Review(M, R, 10), Y < 1970.")
                    .unwrap(),
                s("q3"),
            ),
        ];
        let classes = equivalence_classes(&queries, &v).unwrap();
        // Q1 ≡_V Q2; Q3 stands alone.
        assert_eq!(classes.len(), 2);
        assert_eq!(classes[0], vec![0, 1]);
        assert_eq!(classes[1], vec![2]);
    }
}
