//! Mediated schemas and source descriptions.

use std::fmt;

use qc_datalog::{parse_rule, ConjunctiveQuery, ParseError, Symbol};

/// A binding-pattern adornment: one flag per argument of a source
/// relation. `b` (bound) positions must be supplied to call the source;
/// `f` (free) positions are returned (§4 of the paper).
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Adornment(Vec<bool>);

impl Adornment {
    /// Parses `"fbf"`-style adornment strings.
    pub fn parse(s: &str) -> Option<Adornment> {
        s.chars()
            .map(|c| match c {
                'b' => Some(true),
                'f' => Some(false),
                _ => None,
            })
            .collect::<Option<Vec<bool>>>()
            .map(Adornment)
    }

    /// An all-free adornment of the given arity.
    pub fn all_free(arity: usize) -> Adornment {
        Adornment(vec![false; arity])
    }

    /// The number of positions.
    pub fn arity(&self) -> usize {
        self.0.len()
    }

    /// Whether position `i` is bound.
    pub fn is_bound(&self, i: usize) -> bool {
        self.0[i]
    }

    /// Indexes of bound positions.
    pub fn bound_positions(&self) -> impl Iterator<Item = usize> + '_ {
        self.0
            .iter()
            .enumerate()
            .filter(|(_, b)| **b)
            .map(|(i, _)| i)
    }

    /// Indexes of free positions.
    pub fn free_positions(&self) -> impl Iterator<Item = usize> + '_ {
        self.0
            .iter()
            .enumerate()
            .filter(|(_, b)| !**b)
            .map(|(i, _)| i)
    }
}

impl fmt::Display for Adornment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for b in &self.0 {
            write!(f, "{}", if *b { 'b' } else { 'f' })?;
        }
        Ok(())
    }
}

/// A local-as-view source description `V(X̄) ⊇ Q(X̄)` (§2.2).
///
/// The source exports relation `name`; its contents are (a subset of, for
/// incomplete sources) the answers to `view` over the mediated schema.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct SourceDescription {
    /// The exported relation name (equals `view.head.pred`).
    pub name: Symbol,
    /// The view definition over the mediated schema.
    pub view: ConjunctiveQuery,
    /// Complete (closed-world, `≡`) vs incomplete (open-world, `⊇`,
    /// the paper's default).
    pub complete: bool,
    /// Binding-pattern adornments (§4). Empty means unrestricted access;
    /// several adornments model a source with multiple access paths (the
    /// generalization the paper notes is straightforward).
    pub adornments: Vec<Adornment>,
}

impl SourceDescription {
    /// Builds a source description from view-definition syntax, e.g.
    /// `RedCars(C, M, Y) :- CarDesc(C, M, red, Y).`
    pub fn parse(src: &str) -> Result<SourceDescription, ParseError> {
        let rule = parse_rule(src)?;
        let view = ConjunctiveQuery::from_rule(&rule);
        Ok(SourceDescription {
            name: view.head.pred,
            view,
            complete: false,
            adornments: Vec::new(),
        })
    }

    /// Builder: marks the source complete (closed-world).
    pub fn complete(mut self) -> SourceDescription {
        self.complete = true;
        self
    }

    /// Builder: attaches a binding-pattern adornment (e.g. `"fbf"`).
    /// May be called several times to model multiple access paths.
    ///
    /// # Panics
    /// Panics if the string is not a valid adornment of the view's arity.
    pub fn with_adornment(mut self, s: &str) -> SourceDescription {
        let a = Adornment::parse(s).expect("adornment must be over {b, f}");
        assert_eq!(
            a.arity(),
            self.view.head.arity(),
            "adornment arity must match the view head"
        );
        self.adornments.push(a);
        self
    }

    /// The effective adornments: the declared ones, or the single all-free
    /// adornment when unrestricted.
    pub fn effective_adornments(&self) -> Vec<Adornment> {
        if self.adornments.is_empty() {
            vec![Adornment::all_free(self.view.head.arity())]
        } else {
            self.adornments.clone()
        }
    }
}

impl fmt::Display for SourceDescription {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for a in &self.adornments {
            writeln!(f, "% adornment {a}")?;
        }
        write!(f, "{}", self.view.to_rule())
    }
}

/// The set of available sources — the `V` of `Q1 ⊑_V Q2`.
#[derive(Debug, Clone, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct LavSetting {
    /// The source descriptions.
    pub sources: Vec<SourceDescription>,
}

impl LavSetting {
    /// Builds a setting from view-definition syntax, one per string.
    pub fn parse(views: &[&str]) -> Result<LavSetting, ParseError> {
        Ok(LavSetting {
            sources: views
                .iter()
                .map(|s| SourceDescription::parse(s))
                .collect::<Result<_, _>>()?,
        })
    }

    /// The source by exported relation name.
    pub fn source(&self, name: &str) -> Option<&SourceDescription> {
        self.sources.iter().find(|s| s.name == name)
    }

    /// Removes a source (returns a new setting) — Example 1 removes
    /// `RedCars` to flip a relative containment.
    pub fn without(&self, name: &str) -> LavSetting {
        LavSetting {
            sources: self
                .sources
                .iter()
                .filter(|s| s.name != name)
                .cloned()
                .collect(),
        }
    }

    /// The exported relation names.
    pub fn names(&self) -> Vec<Symbol> {
        self.sources.iter().map(|s| s.name).collect()
    }

    /// Whether every view definition is comparison-free.
    pub fn is_comparison_free(&self) -> bool {
        self.sources.iter().all(|s| s.view.is_comparison_free())
    }

    /// Whether every view comparison is semi-interval (§5).
    pub fn is_semi_interval(&self) -> bool {
        self.sources.iter().all(|s| s.view.is_semi_interval())
    }

    /// All constants mentioned by the view definitions.
    pub fn consts(&self) -> std::collections::BTreeSet<qc_datalog::Const> {
        self.sources.iter().flat_map(|s| s.view.consts()).collect()
    }
}

/// A declared mediated schema: relation names with arities.
///
/// Purely optional — the algorithms infer vocabularies structurally — but
/// validating queries and view definitions against a declared schema
/// catches typos (wrong relation name, wrong arity) before they silently
/// become "no certain answers".
#[derive(Debug, Clone, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct MediatedSchema {
    relations: std::collections::BTreeMap<Symbol, usize>,
}

/// A schema-validation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchemaError {
    /// A body atom uses a relation the schema does not declare.
    UnknownRelation {
        /// The offending relation.
        relation: Symbol,
        /// Where it was used (display form of the rule).
        context: String,
    },
    /// A body atom uses a relation at the wrong arity.
    WrongArity {
        /// The offending relation.
        relation: Symbol,
        /// Declared arity.
        declared: usize,
        /// Used arity.
        used: usize,
        /// Where it was used.
        context: String,
    },
}

impl fmt::Display for SchemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchemaError::UnknownRelation { relation, context } => {
                write!(f, "unknown mediated relation {relation} in: {context}")
            }
            SchemaError::WrongArity {
                relation,
                declared,
                used,
                context,
            } => write!(
                f,
                "relation {relation} declared with arity {declared}, used with {used} in: {context}"
            ),
        }
    }
}

impl std::error::Error for SchemaError {}

impl MediatedSchema {
    /// Builds a schema from `(name, arity)` pairs.
    pub fn new(relations: impl IntoIterator<Item = (&'static str, usize)>) -> MediatedSchema {
        MediatedSchema {
            relations: relations
                .into_iter()
                .map(|(n, a)| (Symbol::new(n), a))
                .collect(),
        }
    }

    /// Declares a relation.
    pub fn declare(&mut self, name: impl AsRef<str>, arity: usize) {
        self.relations.insert(Symbol::new(name), arity);
    }

    /// The declared arity of a relation.
    pub fn arity_of(&self, name: &str) -> Option<usize> {
        self.relations.get(&Symbol::new(name)).copied()
    }

    /// Infers a schema from the view bodies of a setting (first use wins;
    /// inconsistent uses surface via [`MediatedSchema::validate_views`]).
    pub fn infer(views: &LavSetting) -> MediatedSchema {
        let mut s = MediatedSchema::default();
        for src in &views.sources {
            for a in &src.view.subgoals {
                s.relations.entry(a.pred).or_insert(a.arity());
            }
        }
        s
    }

    fn check_atoms<'a>(
        &self,
        atoms: impl Iterator<Item = &'a qc_datalog::Atom>,
        context: &str,
    ) -> Result<(), SchemaError> {
        for a in atoms {
            match self.relations.get(&a.pred) {
                None => {
                    return Err(SchemaError::UnknownRelation {
                        relation: a.pred,
                        context: context.to_string(),
                    })
                }
                Some(&declared) if declared != a.arity() => {
                    return Err(SchemaError::WrongArity {
                        relation: a.pred,
                        declared,
                        used: a.arity(),
                        context: context.to_string(),
                    })
                }
                Some(_) => {}
            }
        }
        Ok(())
    }

    /// Validates every view definition against the schema.
    pub fn validate_views(&self, views: &LavSetting) -> Result<(), SchemaError> {
        for src in &views.sources {
            let ctx = src.view.to_rule().to_string();
            self.check_atoms(src.view.subgoals.iter(), &ctx)?;
        }
        Ok(())
    }

    /// Validates a query program: every *EDB* body atom (an atom whose
    /// predicate the program does not define) must match the schema.
    pub fn validate_query(&self, query: &qc_datalog::Program) -> Result<(), SchemaError> {
        let idb = query.idb_preds();
        for rule in query.rules() {
            let ctx = rule.to_string();
            self.check_atoms(rule.body_atoms().filter(|a| !idb.contains(&a.pred)), &ctx)?;
        }
        Ok(())
    }
}

/// The three sources of the paper's running example (Example 1).
pub fn example1_sources() -> LavSetting {
    let mut setting = LavSetting::parse(&[
        "RedCars(CarNo, Model, Year) :- CarDesc(CarNo, Model, red, Year).",
        "AntiqueCars(CarNo, Model, Year) :- CarDesc(CarNo, Model, Color, Year), Year < 1970.",
        "CarAndDriver(Model, Review) :- Review(Model, Review, 10).",
    ])
    .expect("example sources parse");
    debug_assert_eq!(setting.sources.len(), 3);
    setting.sources.truncate(3);
    setting
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adornment_parsing() {
        let a = Adornment::parse("fbf").unwrap();
        assert_eq!(a.arity(), 3);
        assert!(!a.is_bound(0));
        assert!(a.is_bound(1));
        assert_eq!(a.bound_positions().collect::<Vec<_>>(), vec![1]);
        assert_eq!(a.free_positions().collect::<Vec<_>>(), vec![0, 2]);
        assert_eq!(a.to_string(), "fbf");
        assert!(Adornment::parse("fxb").is_none());
    }

    #[test]
    fn source_description_parses() {
        let s = SourceDescription::parse("RedCars(C, M, Y) :- CarDesc(C, M, red, Y).").unwrap();
        assert_eq!(s.name, "RedCars");
        assert_eq!(s.view.subgoals.len(), 1);
        assert!(!s.complete);
        assert!(s.adornments.is_empty());
    }

    #[test]
    fn builders() {
        let s = SourceDescription::parse("V(X, Y) :- p(X, Y).")
            .unwrap()
            .complete()
            .with_adornment("bf");
        assert!(s.complete);
        assert_eq!(s.adornments[0].to_string(), "bf");
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn adornment_arity_checked() {
        let _ = SourceDescription::parse("V(X, Y) :- p(X, Y).")
            .unwrap()
            .with_adornment("bfb");
    }

    #[test]
    fn mediated_schema_validation() {
        use qc_datalog::parse_program;
        let schema = MediatedSchema::new([("CarDesc", 4), ("Review", 3)]);
        assert_eq!(schema.arity_of("CarDesc"), Some(4));
        assert_eq!(schema.arity_of("Nope"), None);
        let v = example1_sources();
        assert!(schema.validate_views(&v).is_ok());
        // Inference recovers the same schema from the views.
        let inferred = MediatedSchema::infer(&v);
        assert_eq!(inferred.arity_of("CarDesc"), Some(4));
        assert_eq!(inferred.arity_of("Review"), Some(3));
        // A typo'd query is caught.
        let typo = parse_program("q(X) :- CarDes(X, M, C, Y).").unwrap();
        assert!(matches!(
            schema.validate_query(&typo),
            Err(SchemaError::UnknownRelation { .. })
        ));
        let wrong = parse_program("q(X) :- CarDesc(X, M, C).").unwrap();
        assert!(matches!(
            schema.validate_query(&wrong),
            Err(SchemaError::WrongArity {
                declared: 4,
                used: 3,
                ..
            })
        ));
        // IDB helpers in the query are not checked against the schema.
        let helper = parse_program("q(X) :- h(X). h(X) :- CarDesc(X, M, C, Y).").unwrap();
        assert!(schema.validate_query(&helper).is_ok());
        // Errors render.
        let msg = schema.validate_query(&typo).unwrap_err().to_string();
        assert!(msg.contains("unknown"), "{msg}");
    }

    #[test]
    fn example1_setting() {
        let v = example1_sources();
        assert_eq!(v.sources.len(), 3);
        assert!(v.source("AntiqueCars").is_some());
        assert!(!v.is_comparison_free());
        assert!(v.is_semi_interval());
        let without = v.without("RedCars");
        assert_eq!(without.sources.len(), 2);
        assert!(without.source("RedCars").is_none());
    }
}
