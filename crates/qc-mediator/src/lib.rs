//! LAV data integration and relative query containment — the paper's
//! contribution.
//!
//! A data integration system exposes a virtual *mediated schema*; data
//! lives in *sources* described (local-as-view) as views over that schema
//! (§2.2 of the paper). This crate implements:
//!
//! * [`schema`] — source descriptions, open/closed world, binding-pattern
//!   adornments, optional declared mediated schemas;
//! * [`analysis`] — source-set analysis: losslessness, coverage, source
//!   redundancy, relative-equivalence classes (§1's "coverage and
//!   limitations" use case);
//! * [`catalog`] — a mutable, epoch-versioned compiled catalog with
//!   delta-maintained inverse rules and MiniCon view preparations (the
//!   live-churn setting of §1);
//! * [`mod@inverse_rules`] — the inverse-rules algorithm of Duschka,
//!   Genesereth and Levy (\[15\] in the paper) constructing
//!   maximally-contained query plans (reproduces Example 2);
//! * [`fn_elim`] — elimination of the Skolem function terms those plans
//!   contain (reproduces Example 3);
//! * [`expansion`] — the plan expansion `P ↦ P^exp` (§2.3);
//! * [`minicon`] — a MiniCon-style rewriting algorithm, an independent
//!   second construction of maximally-contained plans, extended with the
//!   semi-interval constraint completion sketched in Theorem 5.1;
//! * [`enumerate`] — the literal Theorem 3.1 procedure: bounded candidate
//!   plan enumeration, a third independent plan construction;
//! * [`certain`] — certain answers (Definition 2.1): plan-based
//!   evaluation plus a brute-force oracle that also covers closed-world
//!   sources (reproduces Example 5);
//! * [`binding`] — binding-pattern limitations (§4): executability,
//!   recursive executable plans with `dom` rules, reachable certain
//!   answers (Definitions 4.1–4.4);
//! * [`relative`] — **relative containment** (Definitions 2.4 and 4.5)
//!   with the decision procedures of Theorems 3.1, 3.2, 4.1/4.2, 5.1,
//!   5.2/5.3;
//! * [`gav`] — the global-as-view corollary (§1, §6);
//! * [`reductions`] — the Π₂ᵖ-hardness reduction of Theorem 3.3 and the
//!   Aho–Sagiv–Ullman NP-hardness reduction \[3\], used as workload
//!   generators and correctness oracles;
//! * [`workloads`] — random query/view/instance generators for property
//!   tests and benchmarks.
//!
//! ```
//! use qc_datalog::{parse_program, Symbol};
//! use qc_mediator::schema::LavSetting;
//! use qc_mediator::relative::relatively_contained;
//!
//! let views = LavSetting::parse(&[
//!     "CarAndDriver(Model, Review) :- Review(Model, Review, 10).",
//! ]).unwrap();
//! let q_any = parse_program("qa(M, R) :- Review(M, R, S).").unwrap();
//! let q_top = parse_program("qt(M, R) :- Review(M, R, 10).").unwrap();
//! // Only top-rated reviews are retrievable, so the unrestricted query is
//! // contained in the top-rated one *relative to this source* — though
//! // classically it is strictly larger.
//! assert!(relatively_contained(
//!     &q_any, &Symbol::new("qa"), &q_top, &Symbol::new("qt"), &views).unwrap());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod binding;
pub mod catalog;
pub mod certain;
pub mod enumerate;
pub mod expansion;
pub mod fn_elim;
pub mod gav;
pub mod inverse_rules;
pub mod minicon;
pub mod reductions;
pub mod relative;
pub mod schema;
pub mod workloads;

pub use binding::{executable_plan, is_executable_rule, reachable_certain_answers};
pub use catalog::{CatalogDelta, CatalogError, CatalogOp, CompiledCatalog, DeltaReport};
pub use certain::{certain_answers, BruteForceOracle, World};
pub use expansion::{expand_program, expand_ucq};
pub use fn_elim::eliminate_function_terms;
pub use inverse_rules::{inverse_rules, max_contained_plan};
pub use minicon::minicon_rewritings;
pub use relative::{relatively_contained, relatively_contained_bp, relatively_equivalent};
pub use schema::{Adornment, LavSetting, MediatedSchema, SchemaError, SourceDescription};
