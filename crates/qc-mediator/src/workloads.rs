//! Random workload generators for property tests and benchmarks.
//!
//! Shapes follow the data-integration literature's usual suspects:
//! *chain* queries (joins along a path), *star* queries (a hub joined to
//! satellites), and random views that project subsets of the query's
//! subgoals — plus random source instances.

use qc_datalog::{Atom, ConjunctiveQuery, Database, Program, Term};
use rand::Rng;

use crate::schema::{LavSetting, SourceDescription};

/// Workload shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Shape {
    /// `q(X0, Xn) :- p1(X0, X1), ..., pn(X{n-1}, Xn)`.
    Chain,
    /// `q(H) :- p1(H, X1), ..., pn(H, Xn)`.
    Star,
}

/// Generates a conjunctive query of the given shape over `npreds` binary
/// predicates `p0..`, with `len` subgoals.
pub fn random_query(
    shape: Shape,
    len: usize,
    npreds: usize,
    rng: &mut impl Rng,
) -> ConjunctiveQuery {
    let mut subgoals = Vec::new();
    match shape {
        Shape::Chain => {
            for i in 0..len {
                let p = rng.gen_range(0..npreds);
                subgoals.push(Atom::new(
                    format!("p{p}"),
                    vec![Term::var(format!("X{i}")), Term::var(format!("X{}", i + 1))],
                ));
            }
            ConjunctiveQuery::new(
                Atom::new("q", vec![Term::var("X0"), Term::var(format!("X{len}"))]),
                subgoals,
                Vec::new(),
            )
        }
        Shape::Star => {
            for i in 0..len {
                let p = rng.gen_range(0..npreds);
                subgoals.push(Atom::new(
                    format!("p{p}"),
                    vec![Term::var("H"), Term::var(format!("X{}", i + 1))],
                ));
            }
            ConjunctiveQuery::new(Atom::new("q", vec![Term::var("H")]), subgoals, Vec::new())
        }
    }
}

/// Generates `nviews` random views over the same binary vocabulary:
/// chains of length 1–3 with a random subset of endpoints exported.
pub fn random_views(nviews: usize, npreds: usize, rng: &mut impl Rng) -> LavSetting {
    let mut sources = Vec::new();
    for v in 0..nviews {
        let len = rng.gen_range(1..=3usize);
        let mut body = Vec::new();
        for i in 0..len {
            let p = rng.gen_range(0..npreds);
            body.push(Atom::new(
                format!("p{p}"),
                vec![Term::var(format!("Z{i}")), Term::var(format!("Z{}", i + 1))],
            ));
        }
        // Export endpoints, and sometimes a middle variable.
        let mut head_vars = vec![Term::var("Z0"), Term::var(format!("Z{len}"))];
        if len > 1 && rng.gen_bool(0.4) {
            head_vars.push(Term::var("Z1"));
        }
        let view = ConjunctiveQuery::new(Atom::new(format!("v{v}"), head_vars), body, Vec::new());
        sources.push(SourceDescription {
            name: view.head.pred,
            view,
            complete: false,
            adornments: Vec::new(),
        });
    }
    LavSetting { sources }
}

/// Converts a conjunctive query into a one-rule program.
pub fn query_program(q: &ConjunctiveQuery) -> Program {
    Program::new(vec![q.to_rule()])
}

/// A random instance for the given sources: `tuples_per_source` random
/// tuples over a domain of `domain_size` symbolic constants.
pub fn random_instance(
    views: &LavSetting,
    tuples_per_source: usize,
    domain_size: usize,
    rng: &mut impl Rng,
) -> Database {
    let mut db = Database::new();
    for s in &views.sources {
        let arity = s.view.head.arity();
        for _ in 0..tuples_per_source {
            let tuple: Vec<Term> = (0..arity)
                .map(|_| Term::sym(format!("c{}", rng.gen_range(0..domain_size))))
                .collect();
            db.insert(s.name.as_str(), tuple);
        }
    }
    db
}

/// A random EDB database over binary predicates `p0..` (for evaluating
/// queries and plans directly).
pub fn random_edb(
    npreds: usize,
    tuples_per_pred: usize,
    domain_size: usize,
    rng: &mut impl Rng,
) -> Database {
    let mut db = Database::new();
    for p in 0..npreds {
        for _ in 0..tuples_per_pred {
            db.insert(
                format!("p{p}"),
                vec![
                    Term::sym(format!("c{}", rng.gen_range(0..domain_size))),
                    Term::sym(format!("c{}", rng.gen_range(0..domain_size))),
                ],
            );
        }
    }
    db
}

/// A chain EDB: `e(0,1), e(1,2), …` — the worst case for naive vs
/// semi-naive transitive closure (experiment E10).
pub fn chain_edb(pred: &str, len: usize) -> Database {
    let mut db = Database::new();
    for i in 0..len {
        db.insert(pred, vec![Term::int(i as i64), Term::int(i as i64 + 1)]);
    }
    db
}

/// Identity views (`v_i` mirrors `p_i`): the trivial LAV setting under
/// which relative containment coincides with ordinary containment — used
/// as a baseline and sanity check.
pub fn identity_views(npreds: usize) -> LavSetting {
    let sources = (0..npreds)
        .map(|p| {
            SourceDescription::parse(&format!("vp{p}(A, B) :- p{p}(A, B)."))
                .expect("generated view parses")
        })
        .collect();
    LavSetting { sources }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn shapes_are_well_formed() {
        let mut rng = StdRng::seed_from_u64(1);
        for shape in [Shape::Chain, Shape::Star] {
            let q = random_query(shape, 4, 3, &mut rng);
            assert_eq!(q.subgoals.len(), 4);
            assert!(qc_datalog::validate_rule(&q.to_rule()).is_ok());
        }
    }

    #[test]
    fn views_parse_and_validate() {
        let mut rng = StdRng::seed_from_u64(2);
        let v = random_views(5, 3, &mut rng);
        assert_eq!(v.sources.len(), 5);
        for s in &v.sources {
            assert!(qc_datalog::validate_rule(&s.view.to_rule()).is_ok());
        }
    }

    #[test]
    fn instances_have_requested_shape() {
        let mut rng = StdRng::seed_from_u64(3);
        let v = identity_views(2);
        let db = random_instance(&v, 5, 3, &mut rng);
        // Up to 5 per source (duplicates collapse).
        assert!(db.len_of(&qc_datalog::Symbol::new("vp0")) <= 5);
        assert!(db.total_len() > 0);
        let edb = random_edb(2, 5, 3, &mut rng);
        assert!(edb.total_len() > 0);
        let chain = chain_edb("e", 10);
        assert_eq!(chain.total_len(), 10);
    }

    #[test]
    fn identity_views_make_relative_match_ordinary() {
        use crate::relative::relatively_contained;
        use qc_containment::cq_contained;
        let mut rng = StdRng::seed_from_u64(4);
        let views = identity_views(2);
        let mut agreements = 0;
        for _ in 0..10 {
            let a = random_query(Shape::Chain, 2, 2, &mut rng);
            let b = random_query(Shape::Chain, 2, 2, &mut rng);
            let ordinary = cq_contained(&a, &b);
            let relative = relatively_contained(
                &query_program(&a),
                &qc_datalog::Symbol::new("q"),
                &query_program(&b),
                &qc_datalog::Symbol::new("q"),
                &views,
            )
            .unwrap();
            assert_eq!(ordinary, relative);
            agreements += 1;
        }
        assert_eq!(agreements, 10);
    }
}
