//! A MiniCon-style rewriting algorithm (Pottinger–Halevy), plus the
//! semi-interval constraint completion sketched in Theorem 5.1.
//!
//! MiniCon builds *MiniCon descriptions* (MCDs): a view, a mapping of a
//! minimal set of query subgoals into it, closed under the rule that a
//! query variable mapped to a view *existential* drags every subgoal it
//! occurs in into the same MCD. Combinations of MCDs with disjoint
//! coverage yield the conjunctive rewritings whose union is the
//! maximally-contained plan.
//!
//! This is the second, independent construction of maximally-contained
//! plans (the first being inverse rules + function-term elimination);
//! experiment E9 compares them, and the property tests cross-validate
//! them on random workloads. Every emitted rewriting is verified sound
//! (`expansion ⊆ query`) before inclusion, so over-generation is
//! harmless.
//!
//! For queries and views with **semi-interval** comparisons (§5), the
//! relational skeletons come from MiniCon on the comparison-stripped
//! inputs; per skeleton, the needed constraints are pulled back through
//! each containment mapping and the completed candidate is re-verified
//! with the full dense-order test — "once the non-comparison subgoals are
//! chosen, it is straightforward to pick the appropriate semi-interval
//! constraints" (Theorem 5.1).

use std::collections::{BTreeMap, BTreeSet};

use qc_containment::homomorphism::{all_containment_mappings, apply_mapping};
use qc_containment::{cq_contained_memo, engine, minimize};
use qc_datalog::{Atom, Comparison, ConjunctiveQuery, Subst, Term, Ucq, Var, VarGen};

use crate::expansion::expand_cq;
use crate::schema::{LavSetting, SourceDescription};

/// One MiniCon description.
#[derive(Debug, Clone)]
struct Mcd {
    /// Covered query-subgoal indexes.
    covered: BTreeSet<usize>,
    /// The rewriting atom over query variables / fresh variables /
    /// constants.
    atom: Atom,
    /// Query-variable identifications and constant bindings induced by
    /// the mapping (applied to the final rewriting).
    rho: Subst,
}

/// Builds the MiniCon rewritings of a comparison-free conjunctive query
/// over comparison-free view skeletons, verified sound against `query`.
/// The union of the results is the maximally-contained plan.
///
/// ```
/// use qc_datalog::parse_query;
/// use qc_mediator::minicon::minicon_rewritings;
/// use qc_mediator::schema::LavSetting;
///
/// let views = LavSetting::parse(&["V(A, C) :- p(A, B), r(B, C)."]).unwrap();
/// let q = parse_query("q(X, Z) :- p(X, Y), r(Y, Z).").unwrap();
/// let plan = minicon_rewritings(&q, &views);
/// assert_eq!(plan.disjuncts.len(), 1);
/// assert_eq!(plan.disjuncts[0].subgoals[0].pred, "V");
/// ```
pub fn minicon_rewritings(query: &ConjunctiveQuery, views: &LavSetting) -> Ucq {
    let _t = qc_obs::time(qc_obs::Hist::MiniconNs);
    let mut gen = VarGen::new();
    let mut mcds: Vec<Mcd> = Vec::new();
    for (i, _) in query.subgoals.iter().enumerate() {
        for source in &views.sources {
            mcds.extend(form_mcds(query, source, i, &mut gen));
        }
    }
    assemble_rewritings(query, mcds, views)
}

/// [`minicon_rewritings`] against a [`CompiledCatalog`]: per-view
/// renaming and variable classification come from the cached
/// [`crate::catalog::PreparedView`]s instead of being redone per call.
///
/// The cached renaming is deterministic (`_C<view>_<v>`), so rewritings
/// are stable across processes — unlike the stock path, whose fresh names
/// depend on the process-global variable counter. If a query's own
/// variables collide with the prepared namespace (only possible when the
/// query literally uses `_C`-prefixed names), the call falls back to the
/// stock fresh-renaming path; soundness never depends on the cache.
pub fn minicon_rewritings_catalog(
    query: &ConjunctiveQuery,
    catalog: &crate::catalog::CompiledCatalog,
) -> Ucq {
    let qvars = query.vars();
    let collides = catalog
        .entries()
        .iter()
        .any(|e| e.prepared.view.vars().iter().any(|v| qvars.contains(v)));
    if collides {
        return minicon_rewritings(query, catalog.views());
    }
    let _t = qc_obs::time(qc_obs::Hist::MiniconNs);
    let mut mcds: Vec<Mcd> = Vec::new();
    for (i, _) in query.subgoals.iter().enumerate() {
        for e in catalog.entries() {
            mcds.extend(form_mcds_in(
                query,
                &e.source,
                &e.prepared.view,
                &e.prepared.existential,
                i,
            ));
        }
    }
    assemble_rewritings(query, mcds, catalog.views())
}

/// Combines formed MCDs into full covers, then soundness-filters,
/// minimizes and dedups — the tail shared by both rewriting entry points.
fn assemble_rewritings(query: &ConjunctiveQuery, mcds: Vec<Mcd>, views: &LavSetting) -> Ucq {
    qc_obs::count(qc_obs::Counter::MiniconMcdsFormed, mcds.len() as u64);
    // Combine MCDs with disjoint coverage into full covers.
    let n = query.subgoals.len();
    let mut rewritings: Vec<ConjunctiveQuery> = Vec::new();
    combine(
        query,
        &mcds,
        0,
        &BTreeSet::new(),
        &mut Vec::new(),
        n,
        &mut rewritings,
    );
    // Soundness check + minimization + dedup. The per-candidate checks
    // are independent: each expansion's containment in the query goes
    // through the canonical memo and the batch fans out across worker
    // threads when the engine's parallelism allows. Verdicts come back in
    // candidate order, so dedup (and hence the output) is identical for
    // any parallelism.
    let verdicts = engine::parallel_map(&rewritings, |rw| {
        expand_cq(rw, views).is_some_and(|exp| cq_contained_memo(&exp, query))
    });
    let mut sound: Vec<ConjunctiveQuery> = Vec::new();
    for (rw, ok) in rewritings.iter().zip(verdicts) {
        if ok {
            let min = minimize(rw);
            if !sound.iter().any(|s| s == &min) {
                sound.push(min);
            }
        }
    }
    if sound.is_empty() {
        Ucq::empty(query.head.pred.as_str(), query.head.arity())
    } else {
        Ucq::new(sound).expect("rewritings share the query head")
    }
}

/// Forms every MCD seeded by mapping query subgoal `seed` into some
/// subgoal of `source`'s view.
fn form_mcds(
    query: &ConjunctiveQuery,
    source: &SourceDescription,
    seed: usize,
    gen: &mut VarGen,
) -> Vec<Mcd> {
    let view = source.view.rename_apart(gen);
    let head_vars: BTreeSet<Var> = view.head.vars();
    let existential: BTreeSet<Var> = view
        .subgoals
        .iter()
        .flat_map(|a| a.vars())
        .filter(|v| !head_vars.contains(v))
        .collect();
    form_mcds_in(query, source, &view, &existential, seed)
}

/// MCD formation against an already-renamed view with a precomputed
/// existential set — the shared core of [`form_mcds`] (fresh rename per
/// call) and the compiled-catalog path (deterministic rename cached per
/// view in [`crate::catalog::PreparedView`]).
fn form_mcds_in(
    query: &ConjunctiveQuery,
    source: &SourceDescription,
    view: &ConjunctiveQuery,
    existential: &BTreeSet<Var>,
    seed: usize,
) -> Vec<Mcd> {
    let mut out = Vec::new();
    for (si, _) in view.subgoals.iter().enumerate() {
        let mut state = MapState {
            phi: BTreeMap::new(),
            theta: Subst::new(),
            covered: BTreeSet::new(),
        };
        if map_subgoal(query, view, existential, seed, si, &mut state) {
            // Closure: existential-mapped variables drag their subgoals in.
            // Every way of closing yields a (potentially different) MCD.
            for closed in close_all(query, view, existential, state) {
                if let Some(mcd) = finalize(query, source, view, existential, &closed) {
                    // One work unit per MCD formed (the `MiniconMcdsFormed`
                    // granularity); `trip` unwinds to the nearest
                    // `qc_guard::guarded` boundary because rewriting
                    // construction has no fallible plumbing.
                    qc_guard::trip(qc_guard::stage::MINICON, 1);
                    out.push(mcd);
                }
            }
        }
    }
    out
}

struct MapState {
    /// Query var -> view term (resolved through theta lazily).
    phi: BTreeMap<Var, Term>,
    /// Head homomorphism / constant bindings on view variables.
    theta: Subst,
    covered: BTreeSet<usize>,
}

/// Maps query subgoal `qi` onto view subgoal `si`, extending the state.
fn map_subgoal(
    query: &ConjunctiveQuery,
    view: &ConjunctiveQuery,
    existential: &BTreeSet<Var>,
    qi: usize,
    si: usize,
    st: &mut MapState,
) -> bool {
    let g = &query.subgoals[qi];
    let s = &view.subgoals[si];
    if g.pred != s.pred || g.args.len() != s.args.len() {
        return false;
    }
    for (qt, vt_raw) in g.args.iter().zip(&s.args) {
        let vt = st.theta.apply_term(vt_raw);
        match qt {
            Term::Var(x) => {
                let current = st.phi.get(x).map(|t| st.theta.apply_term(t));
                match current {
                    None => {
                        st.phi.insert(*x, vt);
                    }
                    Some(prev) if prev == vt => {}
                    Some(prev) => {
                        // Equate prev and vt: only between distinguished
                        // view variables / constants (a head homomorphism).
                        if !equate(&prev, &vt, existential, &mut st.theta) {
                            return false;
                        }
                    }
                }
            }
            Term::Const(_) => match &vt {
                Term::Const(_) => {
                    if &vt != qt {
                        return false;
                    }
                }
                Term::Var(y) => {
                    if existential.contains(y) {
                        return false; // view does not guarantee the value
                    }
                    if !st.theta.bind(*y, qt.clone()) {
                        return false;
                    }
                }
                Term::App(..) => return false,
            },
            Term::App(..) => return false,
        }
    }
    st.covered.insert(qi);
    true
}

/// Equates two view terms via the head homomorphism; fails if an
/// existential variable would be constrained.
fn equate(a: &Term, b: &Term, existential: &BTreeSet<Var>, theta: &mut Subst) -> bool {
    match (a, b) {
        (Term::Var(x), _) if !existential.contains(x) => match b {
            Term::Var(y) if existential.contains(y) => false,
            _ => theta.bind(*x, b.clone()),
        },
        (_, Term::Var(y)) if !existential.contains(y) => theta.bind(*y, a.clone()),
        (Term::Const(c), Term::Const(d)) => c == d,
        _ => false,
    }
}

/// Closes the MCD under the existential condition, exploring *every*
/// choice of target subgoal — different closures are different MCDs, and
/// completeness of the rewriting union needs them all.
fn close_all(
    query: &ConjunctiveQuery,
    view: &ConjunctiveQuery,
    existential: &BTreeSet<Var>,
    st: MapState,
) -> Vec<MapState> {
    // Find an uncovered query subgoal that MUST be covered: it mentions a
    // variable mapped to a view existential.
    let must: Option<usize> = (0..query.subgoals.len()).find(|qi| {
        !st.covered.contains(qi)
            && query.subgoals[*qi].vars().iter().any(|x| {
                st.phi
                    .get(x)
                    .map(|t| st.theta.apply_term(t))
                    .is_some_and(|t| matches!(&t, Term::Var(y) if existential.contains(y)))
            })
    });
    let Some(qi) = must else { return vec![st] };
    let mut out = Vec::new();
    for si in 0..view.subgoals.len() {
        let mut attempt = MapState {
            phi: st.phi.clone(),
            theta: st.theta.clone(),
            covered: st.covered.clone(),
        };
        if map_subgoal(query, view, existential, qi, si, &mut attempt) {
            out.extend(close_all(query, view, existential, attempt));
        }
    }
    out
}

/// Builds the rewriting atom and query-variable substitution.
fn finalize(
    query: &ConjunctiveQuery,
    source: &SourceDescription,
    view: &ConjunctiveQuery,
    existential: &BTreeSet<Var>,
    st: &MapState,
) -> Option<Mcd> {
    let head_distinguished: BTreeSet<Var> = query.head.vars();
    // Distinguished query variables must be retrievable.
    for (x, t) in &st.phi {
        let t = st.theta.apply_term(t);
        if head_distinguished.contains(x) {
            match &t {
                Term::Const(_) => {}
                Term::Var(y) if !existential.contains(y) => {}
                _ => return None,
            }
        }
    }
    // Rewriting atom: the view head under theta, with positions named by
    // the query variables that map there.
    let head_args = view
        .head
        .args
        .iter()
        .map(|t| st.theta.apply_term(t))
        .collect::<Vec<Term>>();
    let mut rho = Subst::new();
    let mut atom_args: Vec<Term> = Vec::new();
    for t in &head_args {
        match t {
            Term::Const(_) => atom_args.push(t.clone()),
            _ => {
                // Query variables mapping to this head term.
                let owners: Vec<&Var> = st
                    .phi
                    .iter()
                    .filter(|(_, ot)| &st.theta.apply_term(ot) == t)
                    .map(|(x, _)| x)
                    .collect();
                match owners.split_first() {
                    None => atom_args.push(t.clone()), // unused head position
                    Some((rep, rest)) => {
                        atom_args.push(Term::Var(*(*rep)));
                        for other in rest {
                            if !rho.bind(*(*other), Term::Var(*(*rep))) {
                                return None;
                            }
                        }
                    }
                }
            }
        }
    }
    // Query variables mapped to constants get substituted.
    for (x, t) in &st.phi {
        if let Term::Const(_) = st.theta.apply_term(t) {
            if !rho.bind(*x, st.theta.apply_term(t)) {
                return None;
            }
        }
    }
    Some(Mcd {
        covered: st.covered.clone(),
        atom: Atom {
            pred: source.name,
            args: atom_args,
        },
        rho,
    })
}

/// Recursively combines MCDs with disjoint coverage into full covers.
fn combine(
    query: &ConjunctiveQuery,
    mcds: &[Mcd],
    from: usize,
    covered: &BTreeSet<usize>,
    picked: &mut Vec<usize>,
    n: usize,
    out: &mut Vec<ConjunctiveQuery>,
) {
    if covered.len() == n {
        // Build the rewriting.
        let mut rho = Subst::new();
        let mut body: Vec<Atom> = Vec::new();
        for &i in picked.iter() {
            body.push(mcds[i].atom.clone());
            for v in mcds[i].rho.domain() {
                let t = mcds[i].rho.get(v).expect("domain var").clone();
                // Unify rather than bind: two MCDs may constrain the same
                // query variable (e.g. one equates it with a representative
                // and another with a constant), which must merge, not
                // overwrite.
                if !qc_datalog::unify_terms_with(&mut rho, &Term::Var(*v), &t) {
                    return;
                }
            }
        }
        let cq = ConjunctiveQuery::new(query.head.clone(), body, Vec::new()).substitute(&rho);
        out.push(cq);
        return;
    }
    for i in from..mcds.len() {
        if mcds[i].covered.is_disjoint(covered) {
            let mut c2 = covered.clone();
            c2.extend(mcds[i].covered.iter().copied());
            picked.push(i);
            combine(query, mcds, i + 1, &c2, picked, n, out);
            picked.pop();
        }
    }
}

/// Maximally-contained plan for queries/views with semi-interval
/// comparisons (Theorem 5.1): MiniCon skeletons on the stripped inputs,
/// constraints pulled back through each containment mapping, full
/// dense-order verification.
pub fn semi_interval_plan(query: &ConjunctiveQuery, views: &LavSetting) -> Ucq {
    // Strip comparisons.
    let stripped_query =
        ConjunctiveQuery::new(query.head.clone(), query.subgoals.clone(), Vec::new());
    let stripped_views = LavSetting {
        sources: views
            .sources
            .iter()
            .map(|s| {
                let mut s2 = s.clone();
                s2.view.comparisons.clear();
                s2
            })
            .collect(),
    };
    let skeletons = minicon_rewritings(&stripped_query, &stripped_views);

    let mut disjuncts: Vec<ConjunctiveQuery> = Vec::new();
    for skel in &skeletons.disjuncts {
        let Some(exp) = expand_cq(skel, views) else {
            continue;
        };
        // Pull the query's comparisons back through each relational
        // containment mapping from the (stripped) query into the
        // expansion. Constraints the expansion already entails (because a
        // view guarantees them, like AntiqueCars' `Year < 1970`) are
        // omitted — that is what makes the plan *maximal* and reproduces
        // the paper's P3 exactly.
        let stripped_exp =
            ConjunctiveQuery::new(exp.head.clone(), exp.subgoals.clone(), Vec::new());
        let mut nodemap = qc_containment::comparisons::NodeMap::new();
        let exp_constraints =
            qc_containment::comparisons::comparisons_to_constraints(&exp.comparisons, &mut nodemap);
        for m in all_containment_mappings(&stripped_query, &stripped_exp) {
            let mut extra: Vec<Comparison> = Vec::new();
            for c in &query.comparisons {
                let img =
                    Comparison::new(apply_mapping(&m, &c.lhs), c.op, apply_mapping(&m, &c.rhs));
                let lhs_node = nodemap.node(&img.lhs);
                let rhs_node = nodemap.node(&img.rhs);
                if exp_constraints
                    .entails(qc_constraints::Constraint::new(lhs_node, img.op, rhs_node))
                {
                    continue;
                }
                // Visible at plan level?
                let visible = |t: &Term| match t {
                    Term::Const(_) => true,
                    Term::Var(v) => skel.vars().contains(v),
                    Term::App(..) => false,
                };
                if visible(&img.lhs) && visible(&img.rhs) {
                    extra.push(img);
                }
                // Otherwise the constraint involves a view existential and
                // must be guaranteed by the view's own comparisons — the
                // full containment check below verifies that, dropping the
                // candidate when it is not.
            }
            extra.sort();
            extra.dedup();
            let mut candidate = skel.clone();
            candidate.comparisons = extra;
            if let Some(cexp) = expand_cq(&candidate, views) {
                // Drop candidates whose expansion constraints are
                // unsatisfiable (e.g. a 1960s-window view combined with a
                // pre-1950 query constraint): sound but forever empty.
                let mut nm = qc_containment::comparisons::NodeMap::new();
                let cset = qc_containment::comparisons::comparisons_to_constraints(
                    &cexp.comparisons,
                    &mut nm,
                );
                if !cset.is_satisfiable() {
                    continue;
                }
                if cq_contained_memo(&cexp, query) && !disjuncts.contains(&candidate) {
                    disjuncts.push(candidate);
                }
            }
        }
    }
    // Drop disjuncts subsumed by another (keeps the plan in the paper's
    // minimal form, e.g. Example 4's P3).
    if disjuncts.is_empty() {
        Ucq::empty(query.head.pred.as_str(), query.head.arity())
    } else {
        qc_containment::minimize_union(
            &Ucq::new(disjuncts).expect("disjuncts share the query head"),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::example1_sources;
    use qc_datalog::parse_query;

    #[test]
    fn example1_q1_rewritings_match_example3() {
        let q1 = parse_query(
            "q1(CarNo, Review) :- CarDesc(CarNo, Model, C, Y), Review(Model, Review, Rating).",
        )
        .unwrap();
        let u = minicon_rewritings(&q1, &example1_sources());
        assert_eq!(u.disjuncts.len(), 2);
        let strs: Vec<String> = u
            .disjuncts
            .iter()
            .map(|d| d.to_rule().to_string())
            .collect();
        assert!(
            strs.iter()
                .any(|s| s.contains("RedCars") && s.contains("CarAndDriver")),
            "{strs:?}"
        );
        assert!(
            strs.iter()
                .any(|s| s.contains("AntiqueCars") && s.contains("CarAndDriver")),
            "{strs:?}"
        );
    }

    #[test]
    fn distinguished_existential_blocks_rewriting() {
        // v hides the join column: cannot answer q needing it.
        let views = LavSetting::parse(&["v(X) :- p(X, Y)."]).unwrap();
        let q = parse_query("q(X, Y) :- p(X, Y).").unwrap();
        let u = minicon_rewritings(&q, &views);
        assert!(u.is_empty());
        // But the projection is answerable.
        let q2 = parse_query("q(X) :- p(X, Y).").unwrap();
        let u2 = minicon_rewritings(&q2, &views);
        assert_eq!(u2.disjuncts.len(), 1);
        assert_eq!(u2.disjuncts[0].subgoals[0].pred, "v");
    }

    #[test]
    fn existential_join_drags_subgoals_together() {
        // The view covers both subgoals through its existential Y; an MCD
        // must cover both at once.
        let views = LavSetting::parse(&["v(X, Z) :- p(X, Y), r(Y, Z)."]).unwrap();
        let q = parse_query("q(X, Z) :- p(X, Y), r(Y, Z).").unwrap();
        let u = minicon_rewritings(&q, &views);
        assert_eq!(u.disjuncts.len(), 1);
        assert_eq!(u.disjuncts[0].subgoals.len(), 1);
        // And a query joining p with an *incompatible* r is not answerable.
        let views2 = LavSetting::parse(&["v(X, Z) :- p(X, Y), r(Y, Z)."]).unwrap();
        let q2 = parse_query("q(X, Z) :- p(X, Y), s(Y, Z).").unwrap();
        assert!(minicon_rewritings(&q2, &views2).is_empty());
    }

    #[test]
    fn constants_in_query_must_be_guaranteed() {
        // View with existential rating cannot answer a query pinning it.
        let views = LavSetting::parse(&["v(M) :- review(M, R)."]).unwrap();
        let q = parse_query("q(M) :- review(M, 10).").unwrap();
        assert!(minicon_rewritings(&q, &views).is_empty());
        // View pinning the rating can.
        let views2 = LavSetting::parse(&["v(M) :- review(M, 10)."]).unwrap();
        assert_eq!(minicon_rewritings(&q, &views2).disjuncts.len(), 1);
    }

    #[test]
    fn agrees_with_inverse_rules_route() {
        use crate::fn_elim::eliminate_function_terms;
        use crate::inverse_rules::max_contained_plan;
        use qc_containment::cq::ucq_equivalent;
        use qc_datalog::{parse_program, Symbol};
        let cases: Vec<(&str, Vec<&str>)> = vec![
            (
                "q(X, Z) :- e(X, Y), e(Y, Z).",
                vec!["v1(A, B) :- e(A, B).", "v2(A, C) :- e(A, B), e(B, C)."],
            ),
            (
                "q(X) :- p(X, Y), r(Y).",
                vec!["v1(A) :- p(A, B), r(B).", "v2(A, B) :- p(A, B)."],
            ),
        ];
        for (qs, vs) in cases {
            let q = parse_query(qs).unwrap();
            let views = LavSetting::parse(&vs).unwrap();
            let mc = minicon_rewritings(&q, &views);
            let prog = parse_program(qs).unwrap();
            let inv = eliminate_function_terms(&max_contained_plan(&prog, &views)).unwrap();
            let inv_ucq = inv.unfold(&Symbol::new("q")).unwrap();
            assert!(
                ucq_equivalent(&mc, &inv_ucq),
                "{qs}: minicon={mc} vs inverse={inv_ucq}"
            );
        }
    }

    #[test]
    fn example4_semi_interval_plan() {
        // The paper's Example 4: P3 for Q3.
        let q3 = parse_query(
            "q3(CarNo, Review) :- CarDesc(CarNo, Model, C, Y), Review(Model, Review, 10), Y < 1970.",
        )
        .unwrap();
        let plan = semi_interval_plan(&q3, &example1_sources());
        assert_eq!(plan.disjuncts.len(), 2, "{plan}");
        let red = plan
            .disjuncts
            .iter()
            .find(|d| d.subgoals.iter().any(|a| a.pred == "RedCars"))
            .expect("RedCars disjunct");
        // RedCars needs the explicit Year < 1970.
        assert_eq!(red.comparisons.len(), 1);
        let antique = plan
            .disjuncts
            .iter()
            .find(|d| d.subgoals.iter().any(|a| a.pred == "AntiqueCars"))
            .expect("AntiqueCars disjunct");
        // AntiqueCars already guarantees it: no explicit constraint.
        assert!(antique.comparisons.is_empty(), "{antique}");
    }
}
