//! Minimal vendored stand-in for `criterion`.
//!
//! Provides the API the workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function` / `bench_with_input`, `Bencher::iter`,
//! `BenchmarkId`, `black_box`, and the `criterion_group!` / `criterion_main!`
//! macros — with a simple measurement loop: warm up once, then time
//! `sample_size` batches and report min/mean per iteration to stdout. No
//! statistical analysis, HTML reports, or comparison against saved baselines.

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer value laundering.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Compatibility no-op (the real crate configures from CLI args here).
    pub fn configure_from_args(self) -> Criterion {
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("benchmark group: {name}");
        BenchmarkGroup {
            _parent: self,
            name,
            sample_size: 10,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<String>, mut f: F) {
        run_bench(&id.into(), 10, &mut f);
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Compatibility no-op.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Compatibility no-op.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl IntoBenchmarkId, mut f: F) {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        run_bench(&label, self.sample_size, &mut f);
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        run_bench(&label, self.sample_size, &mut |b: &mut Bencher| f(b, input));
    }

    pub fn finish(self) {}
}

/// Conversion into a benchmark label.
pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.0
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_owned()
    }
}

/// A function-name/parameter pair identifying one benchmark.
pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn new(function: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId(format!("{}/{}", function.into(), parameter))
    }

    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId(parameter.to_string())
    }
}

/// Throughput hint (accepted, ignored).
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_bench(label: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    // Calibration pass: one iteration, to size batches toward ~5ms each.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = b.elapsed.max(Duration::from_nanos(1));
    let batch = (Duration::from_millis(5).as_nanos() / per_iter.as_nanos()).clamp(1, 10_000) as u64;

    let mut best = Duration::MAX;
    let mut total = Duration::ZERO;
    for _ in 0..sample_size {
        let mut b = Bencher {
            iters: batch,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let per = b.elapsed / batch as u32;
        best = best.min(per);
        total += per;
    }
    let mean = total / sample_size as u32;
    println!("  {label}: mean {mean:?}, best {best:?} ({sample_size} samples x {batch} iters)");
}

/// Declares a group-runner function over one or more bench functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $config.configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
