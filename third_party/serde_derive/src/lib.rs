//! Minimal vendored stand-in for `serde_derive`.
//!
//! Generates impls of the simplified `serde::Serialize` / `serde::Deserialize`
//! traits (the `to_value` / `from_value` pair) for structs and enums without
//! generics. Parsing is done directly over `proc_macro::TokenTree` — no `syn`,
//! no `quote` — and code generation goes through a `String` that is re-parsed
//! into a `TokenStream`.
//!
//! The generated representation mirrors real serde's externally-tagged JSON
//! layout:
//!
//! * named struct        → object of fields
//! * newtype struct      → the inner value
//! * tuple struct (n>1)  → array
//! * unit struct         → null
//! * unit variant        → `"Variant"`
//! * newtype variant     → `{"Variant": value}`
//! * tuple variant       → `{"Variant": [..]}`
//! * struct variant      → `{"Variant": {..}}`

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct TypeDef {
    name: String,
    kind: Kind,
}

enum Kind {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let def = parse(input);
    gen_serialize(&def)
        .parse()
        .expect("serde_derive stub: generated Serialize impl failed to parse")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let def = parse(input);
    gen_deserialize(&def)
        .parse()
        .expect("serde_derive stub: generated Deserialize impl failed to parse")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse(input: TokenStream) -> TypeDef {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    // Skip outer attributes and visibility.
    loop {
        match toks.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2,
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = toks.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => break,
        }
    }
    let kw = match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive stub: expected `struct` or `enum`, got {other:?}"),
    };
    i += 1;
    let name = match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive stub: expected type name, got {other:?}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = toks.get(i) {
        if p.as_char() == '<' {
            panic!("serde_derive stub: generic types are not supported (type `{name}`)");
        }
    }
    let kind = match kw.as_str() {
        "struct" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Kind::TupleStruct(count_tuple_fields(g.stream()))
            }
            _ => Kind::UnitStruct,
        },
        "enum" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde_derive stub: expected enum body, got {other:?}"),
        },
        other => panic!("serde_derive stub: expected `struct` or `enum`, got `{other}`"),
    };
    TypeDef { name, kind }
}

/// Extracts field names from `a: A, b: B, ...`, skipping attributes,
/// visibility, and the types themselves (angle-bracket aware).
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        // Skip field attributes and visibility.
        loop {
            match toks.get(i) {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2,
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    i += 1;
                    if let Some(TokenTree::Group(g)) = toks.get(i) {
                        if g.delimiter() == Delimiter::Parenthesis {
                            i += 1;
                        }
                    }
                }
                _ => break,
            }
        }
        let Some(TokenTree::Ident(id)) = toks.get(i) else {
            break;
        };
        fields.push(id.to_string());
        i += 1;
        // Expect `:`, then skip the type up to a top-level comma.
        let mut depth: i32 = 0;
        while i < toks.len() {
            if let TokenTree::Punct(p) = &toks[i] {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    ',' if depth == 0 => {
                        i += 1;
                        break;
                    }
                    _ => {}
                }
            }
            i += 1;
        }
    }
    fields
}

/// Counts fields of a tuple struct / tuple variant body (angle-bracket aware,
/// trailing comma tolerant).
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut depth: i32 = 0;
    let mut fields = 0;
    let mut pending = false;
    for tok in stream {
        match &tok {
            TokenTree::Punct(p) => match p.as_char() {
                '<' => {
                    depth += 1;
                    pending = true;
                }
                '>' => {
                    depth -= 1;
                    pending = true;
                }
                ',' if depth == 0 => {
                    if pending {
                        fields += 1;
                    }
                    pending = false;
                }
                _ => pending = true,
            },
            _ => pending = true,
        }
    }
    if pending {
        fields += 1;
    }
    fields
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        // Skip variant attributes.
        while let Some(TokenTree::Punct(p)) = toks.get(i) {
            if p.as_char() == '#' {
                i += 2;
            } else {
                break;
            }
        }
        let Some(TokenTree::Ident(id)) = toks.get(i) else {
            break;
        };
        let name = id.to_string();
        i += 1;
        let kind = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantKind::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Struct(parse_named_fields(g.stream()))
            }
            _ => VariantKind::Unit,
        };
        variants.push(Variant { name, kind });
        // Skip to past the next top-level comma (covers discriminants).
        while i < toks.len() {
            if let TokenTree::Punct(p) = &toks[i] {
                if p.as_char() == ',' {
                    i += 1;
                    break;
                }
            }
            i += 1;
        }
    }
    variants
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn gen_serialize(def: &TypeDef) -> String {
    let name = &def.name;
    let body = match &def.kind {
        Kind::UnitStruct => "serde::Value::Null".to_string(),
        Kind::NamedStruct(fields) => {
            let items: Vec<String> = fields
                .iter()
                .map(|f| format!("({f:?}.to_string(), serde::Serialize::to_value(&self.{f}))"))
                .collect();
            format!("serde::Value::Object(vec![{}])", items.join(", "))
        }
        Kind::TupleStruct(1) => "serde::Serialize::to_value(&self.0)".to_string(),
        Kind::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("serde::Value::Array(vec![{}])", items.join(", "))
        }
        Kind::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        arms +=
                            &format!("{name}::{vn} => serde::Value::Str({vn:?}.to_string()),\n");
                    }
                    VariantKind::Tuple(1) => {
                        arms += &format!(
                            "{name}::{vn}(x0) => serde::Value::Object(vec![({vn:?}.to_string(), \
                             serde::Serialize::to_value(x0))]),\n"
                        );
                    }
                    VariantKind::Tuple(n) => {
                        let pats: Vec<String> = (0..*n).map(|i| format!("x{i}")).collect();
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("serde::Serialize::to_value(x{i})"))
                            .collect();
                        arms += &format!(
                            "{name}::{vn}({}) => serde::Value::Object(vec![({vn:?}.to_string(), \
                             serde::Value::Array(vec![{}]))]),\n",
                            pats.join(", "),
                            items.join(", ")
                        );
                    }
                    VariantKind::Struct(fields) => {
                        let pats = fields.join(", ");
                        let items: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!("({f:?}.to_string(), serde::Serialize::to_value({f}))")
                            })
                            .collect();
                        arms += &format!(
                            "{name}::{vn} {{ {pats} }} => serde::Value::Object(vec![\
                             ({vn:?}.to_string(), serde::Value::Object(vec![{}]))]),\n",
                            items.join(", ")
                        );
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "#[automatically_derived]\nimpl serde::Serialize for {name} {{\n\
         fn to_value(&self) -> serde::Value {{\n{body}\n}}\n}}\n"
    )
}

fn gen_deserialize(def: &TypeDef) -> String {
    let name = &def.name;
    let body = match &def.kind {
        Kind::UnitStruct => format!(
            "match v {{ serde::Value::Null => Ok({name}), \
             _ => Err(serde::Error::msg(\"expected null for unit struct {name}\")) }}"
        ),
        Kind::NamedStruct(fields) => {
            let items: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!("{f}: serde::Deserialize::from_value(serde::get_field(v, {f:?}))?")
                })
                .collect();
            format!("Ok({name} {{ {} }})", items.join(", "))
        }
        Kind::TupleStruct(1) => format!("Ok({name}(serde::Deserialize::from_value(v)?))"),
        Kind::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|_| {
                    "serde::Deserialize::from_value(it.next().ok_or_else(|| \
                     serde::Error::msg(\"tuple too short\"))?)?"
                        .to_string()
                })
                .collect();
            format!(
                "let items = match v {{ serde::Value::Array(items) => items, \
                 _ => return Err(serde::Error::msg(\"expected array\")) }};\n\
                 let mut it = items.iter();\n\
                 Ok({name}({}))",
                items.join(", ")
            )
        }
        Kind::Enum(variants) => {
            let unit: Vec<&Variant> = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .collect();
            let tagged: Vec<&Variant> = variants
                .iter()
                .filter(|v| !matches!(v.kind, VariantKind::Unit))
                .collect();
            let mut arms = String::new();
            if !unit.is_empty() {
                let mut inner = String::new();
                for v in &unit {
                    let vn = &v.name;
                    inner += &format!("{vn:?} => Ok({name}::{vn}),\n");
                }
                arms += &format!(
                    "serde::Value::Str(s) => match s.as_str() {{\n{inner}\
                     other => Err(serde::Error::msg(format!(\"unknown variant {{other}}\"))),\n}},\n"
                );
            }
            if !tagged.is_empty() {
                let mut inner = String::new();
                for v in &tagged {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => unreachable!(),
                        VariantKind::Tuple(1) => {
                            inner += &format!(
                                "{vn:?} => Ok({name}::{vn}(serde::Deserialize::from_value(inner)?)),\n"
                            );
                        }
                        VariantKind::Tuple(n) => {
                            let items: Vec<String> = (0..*n)
                                .map(|_| {
                                    "serde::Deserialize::from_value(it.next().ok_or_else(|| \
                                     serde::Error::msg(\"tuple too short\"))?)?"
                                        .to_string()
                                })
                                .collect();
                            inner += &format!(
                                "{vn:?} => {{\n\
                                 let items = match inner {{ serde::Value::Array(items) => items, \
                                 _ => return Err(serde::Error::msg(\"expected array\")) }};\n\
                                 let mut it = items.iter();\n\
                                 Ok({name}::{vn}({}))\n}}\n",
                                items.join(", ")
                            );
                        }
                        VariantKind::Struct(fields) => {
                            let items: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{f}: serde::Deserialize::from_value(\
                                         serde::get_field(inner, {f:?}))?"
                                    )
                                })
                                .collect();
                            inner += &format!(
                                "{vn:?} => Ok({name}::{vn} {{ {} }}),\n",
                                items.join(", ")
                            );
                        }
                    }
                }
                arms += &format!(
                    "serde::Value::Object(fields) if fields.len() == 1 => {{\n\
                     let (tag, inner) = &fields[0];\n\
                     match tag.as_str() {{\n{inner}\
                     other => Err(serde::Error::msg(format!(\"unknown variant {{other}}\"))),\n\
                     }}\n}},\n"
                );
            }
            format!(
                "match v {{\n{arms}\
                 _ => Err(serde::Error::msg(\"unexpected value for enum {name}\")),\n}}"
            )
        }
    };
    format!(
        "#[automatically_derived]\nimpl serde::Deserialize for {name} {{\n\
         fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {{\n{body}\n}}\n}}\n"
    )
}
