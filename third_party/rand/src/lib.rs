//! Minimal vendored stand-in for `rand` 0.8.
//!
//! Implements the API surface this workspace uses: `SeedableRng::seed_from_u64`,
//! `Rng::{gen, gen_range, gen_bool}`, `rngs::StdRng`, and
//! `seq::SliceRandom::{shuffle, choose}`. The generator is SplitMix64 — fast,
//! well distributed, and deterministic per seed — but its streams differ from
//! real rand's ChaCha-based `StdRng`, so seeded tests must assert semantic
//! properties rather than exact sequences (the workspace's do).

/// Core random-number source: 64 fresh bits per call.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a range (`low..high` or `low..=high`).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Bernoulli sample with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p));
        // 53 uniform mantissa bits → [0, 1).
        let x = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        x < p
    }

    /// A uniformly random value of a primitive type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self)
    }
}

impl<R: RngCore> Rng for R {}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types [`Rng::gen`] can produce.
pub trait Standard: Sized {
    fn from_rng<R: RngCore>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn from_rng<R: RngCore>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn from_rng<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn from_rng<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges [`Rng::gen_range`] accepts. Blanket impls over [`SampleUniform`]
/// keep literal-type inference working (`rng.gen_range(0..n)` as an index
/// infers `usize`, as with the real crate).
pub trait SampleRange<T> {
    fn sample<R: RngCore>(self, rng: &mut R) -> T;
}

/// Types uniformly samplable from a half-open or closed interval.
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// Uniform sample from `[lo, hi)` when `inclusive` is false, `[lo, hi]`
    /// otherwise.
    fn sample_interval<R: RngCore>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_interval<R: RngCore>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self {
                if inclusive {
                    assert!(lo <= hi, "gen_range: empty range");
                    let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                    if span == 0 {
                        // Full 64-bit domain.
                        return rng.next_u64() as $t;
                    }
                    (lo as u64).wrapping_add(rng.next_u64() % span) as $t
                } else {
                    assert!(lo < hi, "gen_range: empty range");
                    let span = (hi as u64).wrapping_sub(lo as u64);
                    (lo as u64).wrapping_add(rng.next_u64() % span) as $t
                }
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_interval<R: RngCore>(rng: &mut R, lo: Self, hi: Self, _inclusive: bool) -> Self {
        let x = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        lo + x * (hi - lo)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample<R: RngCore>(self, rng: &mut R) -> T {
        T::sample_interval(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample<R: RngCore>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_interval(rng, lo, hi, true)
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic seeded generator (SplitMix64).
    ///
    /// Not the real rand `StdRng` algorithm — streams differ — but the
    /// statistical and determinism properties the workspace relies on hold.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng {
                // Pre-mix so small seeds diverge immediately.
                state: seed ^ 0x9E37_79B9_7F4A_7C15,
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    /// Alias: the workspace treats SmallRng and StdRng identically.
    pub type SmallRng = StdRng;
}

pub mod seq {
    use super::{Rng, RngCore};

    /// Slice shuffling and random selection.
    pub trait SliceRandom {
        type Item;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
        fn choose<'a, R: RngCore>(&'a self, rng: &mut R) -> Option<&'a Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            // Fisher–Yates.
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<'a, R: RngCore>(&'a self, rng: &mut R) -> Option<&'a T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

/// A non-deterministically seeded generator (seeded from the system clock).
pub fn thread_rng() -> rngs::StdRng {
    use std::time::{SystemTime, UNIX_EPOCH};
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.subsec_nanos() as u64 ^ d.as_secs())
        .unwrap_or(0x5EED);
    <rngs::StdRng as SeedableRng>::seed_from_u64(nanos)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rngs::StdRng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: i64 = rng.gen_range(-50i64..50);
            assert!((-50..50).contains(&x));
            let y = rng.gen_range(1..=3usize);
            assert!((1..=3).contains(&y));
        }
    }

    #[test]
    fn shuffle_permutes() {
        use seq::SliceRandom;
        let mut v: Vec<u32> = (0..32).collect();
        let mut rng = StdRng::seed_from_u64(3);
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..32).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle of 32 elements left them sorted");
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
