//! Minimal vendored stand-in for `serde`.
//!
//! The build environment has no network access, so the workspace vendors a
//! drastically simplified serialization framework under the same crate name.
//! Instead of serde's zero-copy visitor architecture, everything funnels
//! through an owned [`Value`] tree:
//!
//! * [`Serialize`] converts a type **to** a [`Value`];
//! * [`Deserialize`] reconstructs a type **from** a [`Value`].
//!
//! The derive macros (re-exported from `serde_derive`) generate impls that
//! mirror real serde's *externally tagged* JSON representation, so data
//! written by this stub is shaped like data written by the real crate.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// An owned, JSON-like data model. The common currency of this stub.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// Signed integers (also used for unsigned values that fit).
    Int(i64),
    /// Unsigned integers too large for `Int`.
    UInt(u64),
    Float(f64),
    Str(String),
    Array(Vec<Value>),
    /// Insertion-ordered key/value map.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in an object; returns `Value::Null` when absent or when
    /// `self` is not an object.
    pub fn get_field(&self, key: &str) -> &Value {
        static NULL: Value = Value::Null;
        match self {
            Value::Object(fields) => fields
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .unwrap_or(&NULL),
            _ => &NULL,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Error raised when a [`Value`] does not match the expected shape.
#[derive(Debug, Clone)]
pub struct Error(pub String);

impl Error {
    pub fn msg(m: impl Into<String>) -> Error {
        Error(m.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Serialize: convert to the [`Value`] data model.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Deserialize: reconstruct from the [`Value`] data model.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Helper used by generated code: fetch a struct field or error.
pub fn get_field<'v>(v: &'v Value, key: &str) -> &'v Value {
    v.get_field(key)
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Int(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::msg(concat!("integer out of range for ", stringify!($t)))),
                    Value::UInt(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::msg(concat!("integer out of range for ", stringify!($t)))),
                    Value::Float(f) if f.fract() == 0.0 => Ok(*f as $t),
                    _ => Err(Error::msg(concat!("expected ", stringify!($t)))),
                }
            }
        }
    )*};
}

impl_int!(i8, i16, i32, i64, isize, u8, u16, u32, usize);

impl Serialize for u64 {
    fn to_value(&self) -> Value {
        if *self <= i64::MAX as u64 {
            Value::Int(*self as i64)
        } else {
            Value::UInt(*self)
        }
    }
}

impl Deserialize for u64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Int(n) if *n >= 0 => Ok(*n as u64),
            Value::UInt(n) => Ok(*n),
            _ => Err(Error::msg("expected u64")),
        }
    }
}

impl Serialize for u128 {
    fn to_value(&self) -> Value {
        if *self <= u64::MAX as u128 {
            (*self as u64).to_value()
        } else {
            Value::Str(self.to_string())
        }
    }
}

impl Deserialize for u128 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Int(n) if *n >= 0 => Ok(*n as u128),
            Value::UInt(n) => Ok(*n as u128),
            Value::Str(s) => s.parse().map_err(|_| Error::msg("expected u128")),
            _ => Err(Error::msg("expected u128")),
        }
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Float(f) => Ok(*f),
            Value::Int(n) => Ok(*n as f64),
            Value::UInt(n) => Ok(*n as f64),
            _ => Err(Error::msg("expected f64")),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::msg("expected bool")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(Error::msg("expected string")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            _ => Err(Error::msg("expected single-character string")),
        }
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(()),
            _ => Err(Error::msg("expected null")),
        }
    }
}

// ---------------------------------------------------------------------------
// Container impls
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            _ => Err(Error::msg("expected array")),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for std::rc::Rc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for std::sync::Arc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (key_to_string(&k.to_value()), v.to_value()))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(fields) => fields
                .iter()
                .map(|(k, val)| {
                    let key = K::from_value(&Value::Str(k.clone()))
                        .or_else(|_| K::from_value(&parse_number_key(k)))?;
                    Ok((key, V::from_value(val)?))
                })
                .collect(),
            _ => Err(Error::msg("expected object")),
        }
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        let mut fields: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (key_to_string(&k.to_value()), v.to_value()))
            .collect();
        fields.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(fields)
    }
}

impl<
        K: Deserialize + Eq + std::hash::Hash,
        V: Deserialize,
        S: std::hash::BuildHasher + Default,
    > Deserialize for HashMap<K, V, S>
{
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(fields) => fields
                .iter()
                .map(|(k, val)| {
                    let key = K::from_value(&Value::Str(k.clone()))
                        .or_else(|_| K::from_value(&parse_number_key(k)))?;
                    Ok((key, V::from_value(val)?))
                })
                .collect(),
            _ => Err(Error::msg("expected object")),
        }
    }
}

impl<T: Serialize> Serialize for std::collections::BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for std::collections::BTreeSet<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            _ => Err(Error::msg("expected array")),
        }
    }
}

fn key_to_string(v: &Value) -> String {
    match v {
        Value::Str(s) => s.clone(),
        Value::Int(n) => n.to_string(),
        Value::UInt(n) => n.to_string(),
        Value::Bool(b) => b.to_string(),
        other => format!("{other:?}"),
    }
}

fn parse_number_key(k: &str) -> Value {
    if let Ok(n) = k.parse::<i64>() {
        Value::Int(n)
    } else if let Ok(n) = k.parse::<u64>() {
        Value::UInt(n)
    } else {
        Value::Str(k.to_owned())
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Array(items) => {
                        let mut it = items.iter();
                        Ok(($({
                            let _ = $idx;
                            $name::from_value(it.next().ok_or_else(|| Error::msg("tuple too short"))?)?
                        },)+))
                    }
                    _ => Err(Error::msg("expected array (tuple)")),
                }
            }
        }
    )+};
}

impl_tuple!((A.0), (A.0, B.1), (A.0, B.1, C.2), (A.0, B.1, C.2, D.3),);

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

/// Compatibility shims for code written against real serde paths.
pub mod de {
    pub use crate::{Deserialize, Error};
}

pub mod ser {
    pub use crate::{Error, Serialize};
}
