//! Minimal vendored stand-in for `proptest`.
//!
//! Implements the subset this workspace's property tests use: the
//! [`Strategy`] trait with `prop_map` / `prop_recursive` / `boxed`,
//! range and string-pattern strategies, tuple strategies, [`Just`],
//! [`collection::vec`], `any::<T>()`, and the `proptest!` /
//! `prop_oneof!` / `prop_assert*!` macros.
//!
//! Differences from the real crate: no shrinking, no failure
//! persistence, and deterministic seeding derived from the test name
//! (every run explores the same cases — convenient for CI).

use std::rc::Rc;

pub use rand::rngs::StdRng as TestRng;
use rand::{Rng, RngCore, SeedableRng};

/// Failure raised by `prop_assert*!` macros.
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError(msg.into())
    }

    /// Compatibility constructor (`TestCaseError::Fail(reason.into())` in
    /// real proptest).
    #[allow(non_snake_case)]
    pub fn Fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Per-block configuration. Only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic RNG for case `case` of test `name`.
pub fn test_rng(name: &str, case: u32) -> TestRng {
    // FNV-1a over the test name, mixed with the case index.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    TestRng::seed_from_u64(h ^ ((case as u64) << 32 | case as u64))
}

// ---------------------------------------------------------------------------
// Strategy
// ---------------------------------------------------------------------------

/// A generator of random values (no shrinking in this stub).
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Recursive structures: `f` receives a strategy for smaller instances.
    ///
    /// `_desired_size` and `_expected_branch_size` are accepted for API
    /// compatibility but ignored; recursion depth is sampled uniformly in
    /// `0..=depth`.
    fn prop_recursive<S2, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        f: F,
    ) -> Recursive<Self::Value>
    where
        Self: Sized + 'static,
        S2: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2 + 'static,
    {
        Recursive {
            leaf: self.boxed(),
            grow: Rc::new(move |b| f(b).boxed()),
            depth,
        }
    }

    /// Keep only values passing `pred` (retries; panics after 1000 misses).
    fn prop_filter<F>(self, reason: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            reason,
            pred,
        }
    }

    /// Type-erased, cheaply clonable handle.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

trait DynStrategy<T> {
    fn dyn_generate(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// Type-erased strategy handle (`Rc`-backed, cheap to clone).
pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.dyn_generate(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Clone)]
pub struct Filter<S, F> {
    inner: S,
    reason: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter: predicate never satisfied ({})", self.reason);
    }
}

/// See [`Strategy::prop_recursive`].
pub struct Recursive<T> {
    leaf: BoxedStrategy<T>,
    grow: Rc<dyn Fn(BoxedStrategy<T>) -> BoxedStrategy<T>>,
    depth: u32,
}

impl<T> Clone for Recursive<T> {
    fn clone(&self) -> Self {
        Recursive {
            leaf: self.leaf.clone(),
            grow: Rc::clone(&self.grow),
            depth: self.depth,
        }
    }
}

impl<T> Strategy for Recursive<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let d = rng.gen_range(0..=self.depth);
        let mut s = self.leaf.clone();
        for _ in 0..d {
            s = (self.grow)(s.clone());
        }
        s.generate(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among boxed alternatives (backs `prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            options: self.options.clone(),
        }
    }
}

impl<T> Union<T> {
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.gen_range(0..self.options.len());
        self.options[i].generate(rng)
    }
}

// Integer ranges.
macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// Tuples of strategies.
macro_rules! impl_tuple_strategy {
    ($(($($name:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy!(
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
);

// String patterns: a small regex-like subset.
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        pattern::generate(self, rng)
    }
}

/// `any::<T>()`: uniform values of primitive types.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

pub trait Arbitrary: Sized {
    type Strategy: Strategy<Value = Self>;

    fn arbitrary() -> Self::Strategy;
}

/// Full-domain strategy for primitives.
#[derive(Clone, Copy)]
pub struct AnyOf<T>(std::marker::PhantomData<T>);

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            type Strategy = AnyOf<$t>;
            fn arbitrary() -> AnyOf<$t> {
                AnyOf(std::marker::PhantomData)
            }
        }
        impl Strategy for AnyOf<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    type Strategy = AnyOf<bool>;
    fn arbitrary() -> AnyOf<bool> {
        AnyOf(std::marker::PhantomData)
    }
}

impl Strategy for AnyOf<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

pub mod collection {
    use super::*;

    /// Size specification for [`vec`].
    #[derive(Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// Strategy producing vectors of `element` with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.size.lo..=self.size.hi_inclusive);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

mod pattern {
    //! Tiny generator for the regex subset the workspace's patterns use:
    //! literal characters, `[a-z0-9_]`-style classes, `\PC` (printable),
    //! and the quantifiers `*`, `+`, `?`, `{m,n}` / `{m}`.

    use super::TestRng;
    use rand::Rng;

    pub fn generate(pat: &str, rng: &mut TestRng) -> String {
        let chars: Vec<char> = pat.chars().collect();
        let mut out = String::new();
        let mut i = 0;
        while i < chars.len() {
            let (choices, next) = parse_atom(&chars, i);
            i = next;
            let (lo, hi, next) = parse_quantifier(&chars, i);
            i = next;
            let n = rng.gen_range(lo..=hi);
            for _ in 0..n {
                if !choices.is_empty() {
                    out.push(choices[rng.gen_range(0..choices.len())]);
                }
            }
        }
        out
    }

    /// Parses one atom starting at `i`; returns the candidate characters and
    /// the next index.
    fn parse_atom(chars: &[char], i: usize) -> (Vec<char>, usize) {
        match chars[i] {
            '[' => {
                let mut j = i + 1;
                let mut set = Vec::new();
                while j < chars.len() && chars[j] != ']' {
                    if j + 2 < chars.len() && chars[j + 1] == '-' && chars[j + 2] != ']' {
                        let (a, b) = (chars[j], chars[j + 2]);
                        for c in a..=b {
                            set.push(c);
                        }
                        j += 3;
                    } else {
                        set.push(chars[j]);
                        j += 1;
                    }
                }
                (set, j + 1)
            }
            '\\' if i + 2 < chars.len() && chars[i + 1] == 'P' && chars[i + 2] == 'C' => {
                // \PC: any printable character. Use ASCII printable plus a
                // couple of multibyte code points to exercise UTF-8 paths.
                let mut set: Vec<char> = (' '..='~').collect();
                set.push('é');
                set.push('λ');
                (set, i + 3)
            }
            '\\' if i + 1 < chars.len() => (vec![chars[i + 1]], i + 2),
            c => (vec![c], i + 1),
        }
    }

    /// Parses an optional quantifier at `i`; returns `(lo, hi, next)`.
    fn parse_quantifier(chars: &[char], i: usize) -> (usize, usize, usize) {
        match chars.get(i) {
            Some('*') => (0, 8, i + 1),
            Some('+') => (1, 8, i + 1),
            Some('?') => (0, 1, i + 1),
            Some('{') => {
                let mut j = i + 1;
                let mut lo = 0usize;
                while let Some(d) = chars.get(j).and_then(|c| c.to_digit(10)) {
                    lo = lo * 10 + d as usize;
                    j += 1;
                }
                let hi = if chars.get(j) == Some(&',') {
                    j += 1;
                    let mut h = 0usize;
                    let mut any = false;
                    while let Some(d) = chars.get(j).and_then(|c| c.to_digit(10)) {
                        h = h * 10 + d as usize;
                        j += 1;
                        any = true;
                    }
                    if any {
                        h
                    } else {
                        lo + 8
                    }
                } else {
                    lo
                };
                debug_assert_eq!(chars.get(j), Some(&'}'));
                (lo, hi, j + 1)
            }
            _ => (1, 1, i),
        }
    }
}

pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
    };
}

pub mod strategy {
    pub use crate::{BoxedStrategy, Just, Strategy, Union};
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strategy:expr),+ $(,)?) => {
        // Weights are accepted but ignored (uniform choice).
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Property-test block: see the real proptest's docs. This stub runs
/// `cases` deterministic cases per test, without shrinking.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests!(<$crate::ProptestConfig as ::std::default::Default>::default(); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ($cfg:expr; $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __pt_cfg: $crate::ProptestConfig = $cfg;
                for __pt_case in 0..__pt_cfg.cases {
                    let mut __pt_rng = $crate::test_rng(stringify!($name), __pt_case);
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __pt_rng);)+
                    let __pt_result: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body Ok(()) })();
                    if let Err(e) = __pt_result {
                        panic!("proptest case {}/{} failed: {}", __pt_case, __pt_cfg.cases, e);
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a `proptest!` body (returns an `Err` instead of
/// panicking so the harness can report the failing case).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__pt_l, __pt_r) = (&$left, &$right);
        if !(*__pt_l == *__pt_r) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), __pt_l, __pt_r,
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__pt_l, __pt_r) = (&$left, &$right);
        if !(*__pt_l == *__pt_r) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n{}",
                stringify!($left), stringify!($right), __pt_l, __pt_r, format!($($fmt)+),
            )));
        }
    }};
}

/// Inequality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__pt_l, __pt_r) = (&$left, &$right);
        if *__pt_l == *__pt_r {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left), stringify!($right), __pt_l,
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__pt_l, __pt_r) = (&$left, &$right);
        if *__pt_l == *__pt_r {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}\n{}",
                stringify!($left), stringify!($right), __pt_l, format!($($fmt)+),
            )));
        }
    }};
}
