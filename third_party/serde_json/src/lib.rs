//! Minimal vendored stand-in for `serde_json`.
//!
//! Prints and parses JSON over the simplified `serde::Value` data model.
//! Supports the subset of the real crate's API used by this workspace:
//! [`to_string`], [`to_string_pretty`], [`to_value`], [`from_value`],
//! [`from_str`], the [`Value`] re-export, and [`to_writer_pretty`].

pub use serde::Value;

use std::fmt::Write as _;

/// Error type covering both syntax and data-shape failures.
#[derive(Debug)]
pub struct Error(String);

impl Error {
    fn msg(m: impl Into<String>) -> Error {
        Error(m.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Error {
        Error(e.0)
    }
}

pub type Result<T> = std::result::Result<T, Error>;

/// Serializes a value to compact JSON.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes a value to two-space-indented JSON.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Serializes a value as pretty JSON into a writer.
pub fn to_writer_pretty<W: std::io::Write, T: serde::Serialize + ?Sized>(
    mut writer: W,
    value: &T,
) -> Result<()> {
    let s = to_string_pretty(value)?;
    writer
        .write_all(s.as_bytes())
        .map_err(|e| Error::msg(e.to_string()))
}

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Result<Value> {
    Ok(value.to_value())
}

/// Reconstructs a typed value from a [`Value`] tree.
pub fn from_value<T: serde::Deserialize>(value: Value) -> Result<T> {
    T::from_value(&value).map_err(Error::from)
}

/// Parses JSON text into a typed value.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T> {
    let value = parse(s)?;
    T::from_value(&value).map_err(Error::from)
}

// ---------------------------------------------------------------------------
// Printer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => {
            let _ = write!(out, "{b}");
        }
        Value::Int(n) => {
            let _ = write!(out, "{n}");
        }
        Value::UInt(n) => {
            let _ = write!(out, "{n}");
        }
        Value::Float(f) => {
            if f.is_finite() {
                if f.fract() == 0.0 && f.abs() < 1e15 {
                    let _ = write!(out, "{f:.1}");
                } else {
                    let _ = write!(out, "{f}");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse(s: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg(format!("trailing input at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected '{}' at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.value()?);
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(Error::msg("expected ',' or ']' in array")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut fields = Vec::new();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.expect(b':')?;
                    let val = self.value()?;
                    fields.push((key, val));
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(fields));
                        }
                        _ => return Err(Error::msg("expected ',' or '}' in object")),
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            other => Err(Error::msg(format!(
                "unexpected input {other:?} at byte {}",
                self.pos
            ))),
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(&b) = self.bytes.get(self.pos) else {
                return Err(Error::msg("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(&esc) = self.bytes.get(self.pos) else {
                        return Err(Error::msg("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::msg("truncated \\u escape"))?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::msg("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::msg("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::msg("bad \\u code point"))?,
                            );
                        }
                        other => {
                            return Err(Error::msg(format!("unknown escape '\\{}'", other as char)))
                        }
                    }
                }
                _ => {
                    // Re-decode UTF-8 from the byte stream.
                    let start = self.pos - 1;
                    let mut end = self.pos;
                    while end < self.bytes.len() && (self.bytes[end] & 0xC0) == 0x80 {
                        end += 1;
                    }
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| Error::msg("invalid UTF-8 in string"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::msg("invalid number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::Int(n));
            }
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::UInt(n));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::msg(format!("invalid number `{text}`")))
    }
}

/// Builds a [`Value`] from JSON-looking syntax. Supports objects, arrays,
/// strings, numbers, booleans, null, and `,`-separated fields — enough for
/// test fixtures.
#[macro_export]
macro_rules! json {
    ($($tt:tt)+) => {
        $crate::__json_text(stringify!($($tt)+))
    };
}

/// Implementation detail of [`json!`]: parses stringified token text.
pub fn __json_text(s: &str) -> Value {
    // `stringify!` inserts spaces between tokens; the parser tolerates them.
    match parse(s) {
        Ok(v) => v,
        Err(e) => panic!("json! literal failed to parse: {e}"),
    }
}
