/root/repo/target/debug/examples/antiques_dealer-d45896b070e257d6.d: examples/antiques_dealer.rs

/root/repo/target/debug/examples/antiques_dealer-d45896b070e257d6: examples/antiques_dealer.rs

examples/antiques_dealer.rs:
