/root/repo/target/debug/examples/web_bookstore-3a5c9d0a31b795b6.d: examples/web_bookstore.rs

/root/repo/target/debug/examples/web_bookstore-3a5c9d0a31b795b6: examples/web_bookstore.rs

examples/web_bookstore.rs:
