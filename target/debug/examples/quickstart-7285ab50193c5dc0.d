/root/repo/target/debug/examples/quickstart-7285ab50193c5dc0.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-7285ab50193c5dc0: examples/quickstart.rs

examples/quickstart.rs:
