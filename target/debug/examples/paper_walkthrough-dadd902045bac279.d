/root/repo/target/debug/examples/paper_walkthrough-dadd902045bac279.d: examples/paper_walkthrough.rs

/root/repo/target/debug/examples/paper_walkthrough-dadd902045bac279: examples/paper_walkthrough.rs

examples/paper_walkthrough.rs:
