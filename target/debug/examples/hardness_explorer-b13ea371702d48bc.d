/root/repo/target/debug/examples/hardness_explorer-b13ea371702d48bc.d: examples/hardness_explorer.rs

/root/repo/target/debug/examples/hardness_explorer-b13ea371702d48bc: examples/hardness_explorer.rs

examples/hardness_explorer.rs:
