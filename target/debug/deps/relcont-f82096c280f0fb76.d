/root/repo/target/debug/deps/relcont-f82096c280f0fb76.d: src/bin/relcont.rs

/root/repo/target/debug/deps/relcont-f82096c280f0fb76: src/bin/relcont.rs

src/bin/relcont.rs:
