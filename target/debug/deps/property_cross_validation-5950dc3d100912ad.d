/root/repo/target/debug/deps/property_cross_validation-5950dc3d100912ad.d: tests/property_cross_validation.rs

/root/repo/target/debug/deps/property_cross_validation-5950dc3d100912ad: tests/property_cross_validation.rs

tests/property_cross_validation.rs:
