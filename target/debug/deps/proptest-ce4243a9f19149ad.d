/root/repo/target/debug/deps/proptest-ce4243a9f19149ad.d: third_party/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-ce4243a9f19149ad.rlib: third_party/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-ce4243a9f19149ad.rmeta: third_party/proptest/src/lib.rs

third_party/proptest/src/lib.rs:
