/root/repo/target/debug/deps/relcont-16e0c8775550211b.d: src/bin/relcont.rs

/root/repo/target/debug/deps/relcont-16e0c8775550211b: src/bin/relcont.rs

src/bin/relcont.rs:
