/root/repo/target/debug/deps/qc_constraints-0bc87ec8a5a92bb2.d: crates/qc-constraints/src/lib.rs crates/qc-constraints/src/linearize.rs crates/qc-constraints/src/op.rs crates/qc-constraints/src/rat.rs crates/qc-constraints/src/set.rs

/root/repo/target/debug/deps/libqc_constraints-0bc87ec8a5a92bb2.rlib: crates/qc-constraints/src/lib.rs crates/qc-constraints/src/linearize.rs crates/qc-constraints/src/op.rs crates/qc-constraints/src/rat.rs crates/qc-constraints/src/set.rs

/root/repo/target/debug/deps/libqc_constraints-0bc87ec8a5a92bb2.rmeta: crates/qc-constraints/src/lib.rs crates/qc-constraints/src/linearize.rs crates/qc-constraints/src/op.rs crates/qc-constraints/src/rat.rs crates/qc-constraints/src/set.rs

crates/qc-constraints/src/lib.rs:
crates/qc-constraints/src/linearize.rs:
crates/qc-constraints/src/op.rs:
crates/qc-constraints/src/rat.rs:
crates/qc-constraints/src/set.rs:
