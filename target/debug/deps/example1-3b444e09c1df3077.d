/root/repo/target/debug/deps/example1-3b444e09c1df3077.d: tests/example1.rs

/root/repo/target/debug/deps/example1-3b444e09c1df3077: tests/example1.rs

tests/example1.rs:
