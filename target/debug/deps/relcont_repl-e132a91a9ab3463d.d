/root/repo/target/debug/deps/relcont_repl-e132a91a9ab3463d.d: src/bin/relcont-repl.rs

/root/repo/target/debug/deps/relcont_repl-e132a91a9ab3463d: src/bin/relcont-repl.rs

src/bin/relcont-repl.rs:
