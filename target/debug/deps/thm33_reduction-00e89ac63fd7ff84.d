/root/repo/target/debug/deps/thm33_reduction-00e89ac63fd7ff84.d: tests/thm33_reduction.rs

/root/repo/target/debug/deps/thm33_reduction-00e89ac63fd7ff84: tests/thm33_reduction.rs

tests/thm33_reduction.rs:
