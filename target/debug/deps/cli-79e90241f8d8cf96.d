/root/repo/target/debug/deps/cli-79e90241f8d8cf96.d: tests/cli.rs

/root/repo/target/debug/deps/cli-79e90241f8d8cf96: tests/cli.rs

tests/cli.rs:

# env-dep:CARGO_BIN_EXE_relcont=/root/repo/target/debug/relcont
# env-dep:CARGO_BIN_EXE_relcont-repl=/root/repo/target/debug/relcont-repl
