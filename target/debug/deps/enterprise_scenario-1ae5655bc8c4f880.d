/root/repo/target/debug/deps/enterprise_scenario-1ae5655bc8c4f880.d: tests/enterprise_scenario.rs

/root/repo/target/debug/deps/enterprise_scenario-1ae5655bc8c4f880: tests/enterprise_scenario.rs

tests/enterprise_scenario.rs:
