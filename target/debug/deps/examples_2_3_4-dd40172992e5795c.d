/root/repo/target/debug/deps/examples_2_3_4-dd40172992e5795c.d: tests/examples_2_3_4.rs

/root/repo/target/debug/deps/examples_2_3_4-dd40172992e5795c: tests/examples_2_3_4.rs

tests/examples_2_3_4.rs:
