/root/repo/target/debug/deps/qc_datalog-037330b47fd0fd48.d: crates/qc-datalog/src/lib.rs crates/qc-datalog/src/atom.rs crates/qc-datalog/src/database.rs crates/qc-datalog/src/eval.rs crates/qc-datalog/src/parser.rs crates/qc-datalog/src/program.rs crates/qc-datalog/src/query.rs crates/qc-datalog/src/rule.rs crates/qc-datalog/src/subst.rs crates/qc-datalog/src/symbol.rs crates/qc-datalog/src/term.rs crates/qc-datalog/src/validate.rs

/root/repo/target/debug/deps/libqc_datalog-037330b47fd0fd48.rlib: crates/qc-datalog/src/lib.rs crates/qc-datalog/src/atom.rs crates/qc-datalog/src/database.rs crates/qc-datalog/src/eval.rs crates/qc-datalog/src/parser.rs crates/qc-datalog/src/program.rs crates/qc-datalog/src/query.rs crates/qc-datalog/src/rule.rs crates/qc-datalog/src/subst.rs crates/qc-datalog/src/symbol.rs crates/qc-datalog/src/term.rs crates/qc-datalog/src/validate.rs

/root/repo/target/debug/deps/libqc_datalog-037330b47fd0fd48.rmeta: crates/qc-datalog/src/lib.rs crates/qc-datalog/src/atom.rs crates/qc-datalog/src/database.rs crates/qc-datalog/src/eval.rs crates/qc-datalog/src/parser.rs crates/qc-datalog/src/program.rs crates/qc-datalog/src/query.rs crates/qc-datalog/src/rule.rs crates/qc-datalog/src/subst.rs crates/qc-datalog/src/symbol.rs crates/qc-datalog/src/term.rs crates/qc-datalog/src/validate.rs

crates/qc-datalog/src/lib.rs:
crates/qc-datalog/src/atom.rs:
crates/qc-datalog/src/database.rs:
crates/qc-datalog/src/eval.rs:
crates/qc-datalog/src/parser.rs:
crates/qc-datalog/src/program.rs:
crates/qc-datalog/src/query.rs:
crates/qc-datalog/src/rule.rs:
crates/qc-datalog/src/subst.rs:
crates/qc-datalog/src/symbol.rs:
crates/qc-datalog/src/term.rs:
crates/qc-datalog/src/validate.rs:
