/root/repo/target/debug/deps/qc_mediator-43528c48c2f100c0.d: crates/qc-mediator/src/lib.rs crates/qc-mediator/src/analysis.rs crates/qc-mediator/src/binding.rs crates/qc-mediator/src/certain.rs crates/qc-mediator/src/enumerate.rs crates/qc-mediator/src/expansion.rs crates/qc-mediator/src/fn_elim.rs crates/qc-mediator/src/gav.rs crates/qc-mediator/src/inverse_rules.rs crates/qc-mediator/src/minicon.rs crates/qc-mediator/src/reductions.rs crates/qc-mediator/src/relative.rs crates/qc-mediator/src/schema.rs crates/qc-mediator/src/workloads.rs

/root/repo/target/debug/deps/libqc_mediator-43528c48c2f100c0.rlib: crates/qc-mediator/src/lib.rs crates/qc-mediator/src/analysis.rs crates/qc-mediator/src/binding.rs crates/qc-mediator/src/certain.rs crates/qc-mediator/src/enumerate.rs crates/qc-mediator/src/expansion.rs crates/qc-mediator/src/fn_elim.rs crates/qc-mediator/src/gav.rs crates/qc-mediator/src/inverse_rules.rs crates/qc-mediator/src/minicon.rs crates/qc-mediator/src/reductions.rs crates/qc-mediator/src/relative.rs crates/qc-mediator/src/schema.rs crates/qc-mediator/src/workloads.rs

/root/repo/target/debug/deps/libqc_mediator-43528c48c2f100c0.rmeta: crates/qc-mediator/src/lib.rs crates/qc-mediator/src/analysis.rs crates/qc-mediator/src/binding.rs crates/qc-mediator/src/certain.rs crates/qc-mediator/src/enumerate.rs crates/qc-mediator/src/expansion.rs crates/qc-mediator/src/fn_elim.rs crates/qc-mediator/src/gav.rs crates/qc-mediator/src/inverse_rules.rs crates/qc-mediator/src/minicon.rs crates/qc-mediator/src/reductions.rs crates/qc-mediator/src/relative.rs crates/qc-mediator/src/schema.rs crates/qc-mediator/src/workloads.rs

crates/qc-mediator/src/lib.rs:
crates/qc-mediator/src/analysis.rs:
crates/qc-mediator/src/binding.rs:
crates/qc-mediator/src/certain.rs:
crates/qc-mediator/src/enumerate.rs:
crates/qc-mediator/src/expansion.rs:
crates/qc-mediator/src/fn_elim.rs:
crates/qc-mediator/src/gav.rs:
crates/qc-mediator/src/inverse_rules.rs:
crates/qc-mediator/src/minicon.rs:
crates/qc-mediator/src/reductions.rs:
crates/qc-mediator/src/relative.rs:
crates/qc-mediator/src/schema.rs:
crates/qc-mediator/src/workloads.rs:
