/root/repo/target/debug/deps/seed_probe_tmp-a24079a223d1f06a.d: tests/seed_probe_tmp.rs

/root/repo/target/debug/deps/seed_probe_tmp-a24079a223d1f06a: tests/seed_probe_tmp.rs

tests/seed_probe_tmp.rs:
