/root/repo/target/debug/deps/relcont_repl-1bad24941e55706f.d: src/bin/relcont-repl.rs

/root/repo/target/debug/deps/relcont_repl-1bad24941e55706f: src/bin/relcont-repl.rs

src/bin/relcont-repl.rs:
