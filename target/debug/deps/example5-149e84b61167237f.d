/root/repo/target/debug/deps/example5-149e84b61167237f.d: tests/example5.rs

/root/repo/target/debug/deps/example5-149e84b61167237f: tests/example5.rs

tests/example5.rs:
