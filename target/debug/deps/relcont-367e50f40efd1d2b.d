/root/repo/target/debug/deps/relcont-367e50f40efd1d2b.d: src/lib.rs

/root/repo/target/debug/deps/relcont-367e50f40efd1d2b: src/lib.rs

src/lib.rs:
