/root/repo/target/debug/deps/binding_patterns-33552488e27419e0.d: tests/binding_patterns.rs

/root/repo/target/debug/deps/binding_patterns-33552488e27419e0: tests/binding_patterns.rs

tests/binding_patterns.rs:
