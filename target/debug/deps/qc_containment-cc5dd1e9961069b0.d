/root/repo/target/debug/deps/qc_containment-cc5dd1e9961069b0.d: crates/qc-containment/src/lib.rs crates/qc-containment/src/canonical.rs crates/qc-containment/src/comparisons.rs crates/qc-containment/src/cq.rs crates/qc-containment/src/datalog_ucq.rs crates/qc-containment/src/homomorphism.rs crates/qc-containment/src/uniform.rs crates/qc-containment/src/witness.rs

/root/repo/target/debug/deps/libqc_containment-cc5dd1e9961069b0.rlib: crates/qc-containment/src/lib.rs crates/qc-containment/src/canonical.rs crates/qc-containment/src/comparisons.rs crates/qc-containment/src/cq.rs crates/qc-containment/src/datalog_ucq.rs crates/qc-containment/src/homomorphism.rs crates/qc-containment/src/uniform.rs crates/qc-containment/src/witness.rs

/root/repo/target/debug/deps/libqc_containment-cc5dd1e9961069b0.rmeta: crates/qc-containment/src/lib.rs crates/qc-containment/src/canonical.rs crates/qc-containment/src/comparisons.rs crates/qc-containment/src/cq.rs crates/qc-containment/src/datalog_ucq.rs crates/qc-containment/src/homomorphism.rs crates/qc-containment/src/uniform.rs crates/qc-containment/src/witness.rs

crates/qc-containment/src/lib.rs:
crates/qc-containment/src/canonical.rs:
crates/qc-containment/src/comparisons.rs:
crates/qc-containment/src/cq.rs:
crates/qc-containment/src/datalog_ucq.rs:
crates/qc-containment/src/homomorphism.rs:
crates/qc-containment/src/uniform.rs:
crates/qc-containment/src/witness.rs:
