/root/repo/target/debug/deps/relcont-ee74ed40708717dd.d: src/lib.rs

/root/repo/target/debug/deps/librelcont-ee74ed40708717dd.rlib: src/lib.rs

/root/repo/target/debug/deps/librelcont-ee74ed40708717dd.rmeta: src/lib.rs

src/lib.rs:
