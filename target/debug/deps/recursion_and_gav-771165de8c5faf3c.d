/root/repo/target/debug/deps/recursion_and_gav-771165de8c5faf3c.d: tests/recursion_and_gav.rs

/root/repo/target/debug/deps/recursion_and_gav-771165de8c5faf3c: tests/recursion_and_gav.rs

tests/recursion_and_gav.rs:
