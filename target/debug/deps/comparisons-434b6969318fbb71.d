/root/repo/target/debug/deps/comparisons-434b6969318fbb71.d: tests/comparisons.rs

/root/repo/target/debug/deps/comparisons-434b6969318fbb71: tests/comparisons.rs

tests/comparisons.rs:
