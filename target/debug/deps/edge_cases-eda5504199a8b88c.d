/root/repo/target/debug/deps/edge_cases-eda5504199a8b88c.d: tests/edge_cases.rs

/root/repo/target/debug/deps/edge_cases-eda5504199a8b88c: tests/edge_cases.rs

tests/edge_cases.rs:
