/root/repo/target/release/deps/relcont-27fdc0c2636e0c25.d: src/bin/relcont.rs

/root/repo/target/release/deps/relcont-27fdc0c2636e0c25: src/bin/relcont.rs

src/bin/relcont.rs:
