/root/repo/target/release/deps/qc_containment-6692097cdd9ac1a1.d: crates/qc-containment/src/lib.rs crates/qc-containment/src/canonical.rs crates/qc-containment/src/comparisons.rs crates/qc-containment/src/cq.rs crates/qc-containment/src/datalog_ucq.rs crates/qc-containment/src/homomorphism.rs crates/qc-containment/src/uniform.rs crates/qc-containment/src/witness.rs

/root/repo/target/release/deps/libqc_containment-6692097cdd9ac1a1.rlib: crates/qc-containment/src/lib.rs crates/qc-containment/src/canonical.rs crates/qc-containment/src/comparisons.rs crates/qc-containment/src/cq.rs crates/qc-containment/src/datalog_ucq.rs crates/qc-containment/src/homomorphism.rs crates/qc-containment/src/uniform.rs crates/qc-containment/src/witness.rs

/root/repo/target/release/deps/libqc_containment-6692097cdd9ac1a1.rmeta: crates/qc-containment/src/lib.rs crates/qc-containment/src/canonical.rs crates/qc-containment/src/comparisons.rs crates/qc-containment/src/cq.rs crates/qc-containment/src/datalog_ucq.rs crates/qc-containment/src/homomorphism.rs crates/qc-containment/src/uniform.rs crates/qc-containment/src/witness.rs

crates/qc-containment/src/lib.rs:
crates/qc-containment/src/canonical.rs:
crates/qc-containment/src/comparisons.rs:
crates/qc-containment/src/cq.rs:
crates/qc-containment/src/datalog_ucq.rs:
crates/qc-containment/src/homomorphism.rs:
crates/qc-containment/src/uniform.rs:
crates/qc-containment/src/witness.rs:
