/root/repo/target/release/deps/qc_constraints-29f1ac79e5fc7f16.d: crates/qc-constraints/src/lib.rs crates/qc-constraints/src/linearize.rs crates/qc-constraints/src/op.rs crates/qc-constraints/src/rat.rs crates/qc-constraints/src/set.rs

/root/repo/target/release/deps/libqc_constraints-29f1ac79e5fc7f16.rlib: crates/qc-constraints/src/lib.rs crates/qc-constraints/src/linearize.rs crates/qc-constraints/src/op.rs crates/qc-constraints/src/rat.rs crates/qc-constraints/src/set.rs

/root/repo/target/release/deps/libqc_constraints-29f1ac79e5fc7f16.rmeta: crates/qc-constraints/src/lib.rs crates/qc-constraints/src/linearize.rs crates/qc-constraints/src/op.rs crates/qc-constraints/src/rat.rs crates/qc-constraints/src/set.rs

crates/qc-constraints/src/lib.rs:
crates/qc-constraints/src/linearize.rs:
crates/qc-constraints/src/op.rs:
crates/qc-constraints/src/rat.rs:
crates/qc-constraints/src/set.rs:
