/root/repo/target/release/deps/qc_datalog-e01ce4865cf4cef9.d: crates/qc-datalog/src/lib.rs crates/qc-datalog/src/atom.rs crates/qc-datalog/src/database.rs crates/qc-datalog/src/eval.rs crates/qc-datalog/src/parser.rs crates/qc-datalog/src/program.rs crates/qc-datalog/src/query.rs crates/qc-datalog/src/rule.rs crates/qc-datalog/src/subst.rs crates/qc-datalog/src/symbol.rs crates/qc-datalog/src/term.rs crates/qc-datalog/src/validate.rs

/root/repo/target/release/deps/libqc_datalog-e01ce4865cf4cef9.rlib: crates/qc-datalog/src/lib.rs crates/qc-datalog/src/atom.rs crates/qc-datalog/src/database.rs crates/qc-datalog/src/eval.rs crates/qc-datalog/src/parser.rs crates/qc-datalog/src/program.rs crates/qc-datalog/src/query.rs crates/qc-datalog/src/rule.rs crates/qc-datalog/src/subst.rs crates/qc-datalog/src/symbol.rs crates/qc-datalog/src/term.rs crates/qc-datalog/src/validate.rs

/root/repo/target/release/deps/libqc_datalog-e01ce4865cf4cef9.rmeta: crates/qc-datalog/src/lib.rs crates/qc-datalog/src/atom.rs crates/qc-datalog/src/database.rs crates/qc-datalog/src/eval.rs crates/qc-datalog/src/parser.rs crates/qc-datalog/src/program.rs crates/qc-datalog/src/query.rs crates/qc-datalog/src/rule.rs crates/qc-datalog/src/subst.rs crates/qc-datalog/src/symbol.rs crates/qc-datalog/src/term.rs crates/qc-datalog/src/validate.rs

crates/qc-datalog/src/lib.rs:
crates/qc-datalog/src/atom.rs:
crates/qc-datalog/src/database.rs:
crates/qc-datalog/src/eval.rs:
crates/qc-datalog/src/parser.rs:
crates/qc-datalog/src/program.rs:
crates/qc-datalog/src/query.rs:
crates/qc-datalog/src/rule.rs:
crates/qc-datalog/src/subst.rs:
crates/qc-datalog/src/symbol.rs:
crates/qc-datalog/src/term.rs:
crates/qc-datalog/src/validate.rs:
