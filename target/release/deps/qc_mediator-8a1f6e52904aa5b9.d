/root/repo/target/release/deps/qc_mediator-8a1f6e52904aa5b9.d: crates/qc-mediator/src/lib.rs crates/qc-mediator/src/analysis.rs crates/qc-mediator/src/binding.rs crates/qc-mediator/src/certain.rs crates/qc-mediator/src/enumerate.rs crates/qc-mediator/src/expansion.rs crates/qc-mediator/src/fn_elim.rs crates/qc-mediator/src/gav.rs crates/qc-mediator/src/inverse_rules.rs crates/qc-mediator/src/minicon.rs crates/qc-mediator/src/reductions.rs crates/qc-mediator/src/relative.rs crates/qc-mediator/src/schema.rs crates/qc-mediator/src/workloads.rs

/root/repo/target/release/deps/libqc_mediator-8a1f6e52904aa5b9.rlib: crates/qc-mediator/src/lib.rs crates/qc-mediator/src/analysis.rs crates/qc-mediator/src/binding.rs crates/qc-mediator/src/certain.rs crates/qc-mediator/src/enumerate.rs crates/qc-mediator/src/expansion.rs crates/qc-mediator/src/fn_elim.rs crates/qc-mediator/src/gav.rs crates/qc-mediator/src/inverse_rules.rs crates/qc-mediator/src/minicon.rs crates/qc-mediator/src/reductions.rs crates/qc-mediator/src/relative.rs crates/qc-mediator/src/schema.rs crates/qc-mediator/src/workloads.rs

/root/repo/target/release/deps/libqc_mediator-8a1f6e52904aa5b9.rmeta: crates/qc-mediator/src/lib.rs crates/qc-mediator/src/analysis.rs crates/qc-mediator/src/binding.rs crates/qc-mediator/src/certain.rs crates/qc-mediator/src/enumerate.rs crates/qc-mediator/src/expansion.rs crates/qc-mediator/src/fn_elim.rs crates/qc-mediator/src/gav.rs crates/qc-mediator/src/inverse_rules.rs crates/qc-mediator/src/minicon.rs crates/qc-mediator/src/reductions.rs crates/qc-mediator/src/relative.rs crates/qc-mediator/src/schema.rs crates/qc-mediator/src/workloads.rs

crates/qc-mediator/src/lib.rs:
crates/qc-mediator/src/analysis.rs:
crates/qc-mediator/src/binding.rs:
crates/qc-mediator/src/certain.rs:
crates/qc-mediator/src/enumerate.rs:
crates/qc-mediator/src/expansion.rs:
crates/qc-mediator/src/fn_elim.rs:
crates/qc-mediator/src/gav.rs:
crates/qc-mediator/src/inverse_rules.rs:
crates/qc-mediator/src/minicon.rs:
crates/qc-mediator/src/reductions.rs:
crates/qc-mediator/src/relative.rs:
crates/qc-mediator/src/schema.rs:
crates/qc-mediator/src/workloads.rs:
