/root/repo/target/release/deps/relcont-8ac3f58200e99cac.d: src/lib.rs

/root/repo/target/release/deps/librelcont-8ac3f58200e99cac.rlib: src/lib.rs

/root/repo/target/release/deps/librelcont-8ac3f58200e99cac.rmeta: src/lib.rs

src/lib.rs:
