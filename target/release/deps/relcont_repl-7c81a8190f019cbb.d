/root/repo/target/release/deps/relcont_repl-7c81a8190f019cbb.d: src/bin/relcont-repl.rs

/root/repo/target/release/deps/relcont_repl-7c81a8190f019cbb: src/bin/relcont-repl.rs

src/bin/relcont-repl.rs:
