//! Experiment E6: §4 — binding patterns. Executable plans, reachable
//! certain answers, the recursion-necessity phenomenon, and the
//! Theorem 4.1/4.2 decision procedure.

use relcont::datalog::eval::EvalOptions;
use relcont::datalog::{parse_program, parse_rule, Database, Program, Symbol, Term};
use relcont::mediator::binding::{
    executable_plan, is_executable_program, is_executable_rule, reachable_certain_answers,
};
use relcont::mediator::relative::{relatively_contained, relatively_contained_bp};
use relcont::mediator::schema::LavSetting;

fn s(n: &str) -> Symbol {
    Symbol::new(n)
}

/// The paper's §4.1 example: RedCars now requires the model as input.
fn redcars_fbf() -> LavSetting {
    let mut v = LavSetting::parse(&[
        "RedCars(CarNo, Model, Year) :- CarDescription(CarNo, Model, red, Year).",
    ])
    .unwrap();
    v.sources[0] = v.sources[0].clone().with_adornment("fbf");
    v
}

#[test]
fn definition_4_1_executability() {
    let v = redcars_fbf();
    // The paper's "cheating" plan IS executable (it supplies a constant)…
    let cheat = parse_rule("p(CarNo, Year) :- RedCars(CarNo, corolla, Year).").unwrap();
    assert!(is_executable_rule(&cheat, &v));
    // …but the direct plan is not.
    let direct = parse_rule("p(CarNo, Year) :- RedCars(CarNo, Model, Year).").unwrap();
    assert!(!is_executable_rule(&direct, &v));
}

#[test]
fn definition_4_2_soundness_excludes_invented_constants() {
    // The cheating plan invents 'corolla', which appears in neither the
    // query nor the views; the reachable certain answers must be empty
    // even though the source contains a red corolla.
    let v = redcars_fbf();
    let q = parse_program("q(CarNo, Year) :- CarDescription(CarNo, Model, red, Year).").unwrap();
    let db = Database::parse("RedCars(c1, corolla, 1988).").unwrap();
    let got = reachable_certain_answers(&q, &s("q"), &v, &db, &EvalOptions::default()).unwrap();
    assert!(got.is_empty());
}

#[test]
fn executable_plans_are_recursive_and_executable() {
    let mut v = LavSetting::parse(&[
        "Catalog(Author, Isbn) :- authored(Isbn, Author).",
        "PriceOf(Isbn, Price) :- price(Isbn, Price).",
    ])
    .unwrap();
    v.sources[0] = v.sources[0].clone().with_adornment("bf");
    v.sources[1] = v.sources[1].clone().with_adornment("bf");
    let q = parse_program("q(P) :- authored(I, eco), price(I, P).").unwrap();
    let plan = executable_plan(&q, &v);
    assert!(plan.is_recursive());
    assert!(is_executable_program(&plan, &v));
    // dom is seeded with the query constant.
    assert!(plan.rules().iter().any(|r| r.to_string() == "dom(eco)."));
}

#[test]
fn recursion_is_necessary_for_reachability() {
    // Kwok–Weld-style citation chains: a nonrecursive plan of depth k
    // misses papers at depth > k; the dom-recursive plan finds them all.
    let mut v = LavSetting::parse(&["Cites(P1, P2) :- cites(P1, P2)."]).unwrap();
    v.sources[0] = v.sources[0].clone().with_adornment("bf");
    let q = parse_program("q(P) :- cites(p0, P). q(P) :- q(Q), cites(Q, P).").unwrap();
    // A long chain.
    let mut facts = String::new();
    for i in 0..12 {
        facts.push_str(&format!("Cites(p{}, p{}). ", i, i + 1));
    }
    let db = Database::parse(&facts).unwrap();
    let got = reachable_certain_answers(&q, &s("q"), &v, &db, &EvalOptions::default()).unwrap();
    assert_eq!(got.len(), 12);
    assert!(got.contains(&vec![Term::sym("p12")]));
}

#[test]
fn theorem_4_1_4_2_decisions() {
    let mut v = LavSetting::parse(&[
        "Catalog(Author, Isbn) :- authored(Isbn, Author).",
        "PriceOf(Isbn, Price) :- price(Isbn, Price).",
    ])
    .unwrap();
    v.sources[0] = v.sources[0].clone().with_adornment("bf");
    v.sources[1] = v.sources[1].clone().with_adornment("bf");

    let q_eco = parse_program("qe(P) :- authored(I, eco), price(I, P).").unwrap();
    // Adding a redundant subgoal keeps relative equivalence.
    let q_eco_red =
        parse_program("qf(P) :- authored(I, eco), price(I, P), authored(I, A).").unwrap();
    assert!(relatively_contained_bp(&q_eco, &s("qe"), &q_eco_red, &s("qf"), &v).unwrap());
    assert!(relatively_contained_bp(&q_eco_red, &s("qf"), &q_eco, &s("qe"), &v).unwrap());

    // A genuinely stronger query is not relatively contained in: prices
    // of eco's books are not always prices of kafka's books... with eco
    // and kafka both known, both reachable sets exist and differ.
    let q_two =
        parse_program("qt(P) :- authored(I, eco), price(I, P), authored(I2, kafka), price(I2, P).")
            .unwrap();
    // qe ⋢ qt (qt requires a kafka-priced match too).
    assert!(!relatively_contained_bp(&q_eco, &s("qe"), &q_two, &s("qt"), &v).unwrap());
    // qt ⊑ qe... qt's constants include kafka which qe lacks — the
    // Definition 4.5 precondition fails.
    assert!(relatively_contained_bp(&q_two, &s("qt"), &q_eco, &s("qe"), &v).is_err());

    // A broad query with no constants is vacuously contained (its sound
    // plans retrieve nothing).
    let q_all = parse_program("qa(P) :- price(I, P).").unwrap();
    assert!(relatively_contained_bp(&q_all, &s("qa"), &q_eco, &s("qe"), &v).unwrap());
}

#[test]
fn bp_witness_expansion_explains_failure() {
    use relcont::mediator::relative::relatively_contained_bp_witness;
    let mut v = LavSetting::parse(&[
        "Catalog(Author, Isbn) :- authored(Isbn, Author).",
        "PriceOf(Isbn, Price) :- price(Isbn, Price).",
    ])
    .unwrap();
    v.sources[0] = v.sources[0].clone().with_adornment("bf");
    v.sources[1] = v.sources[1].clone().with_adornment("bf");
    let q_eco = parse_program("qe(P) :- authored(I, eco), price(I, P).").unwrap();
    let q_strong = parse_program(
        "qs(P) :- authored(I, eco), price(I, P), price(I2, P), authored(I2, eco), cites(I, I2).",
    )
    .unwrap();
    // qe ⋢ qs (the citation atom is never guaranteed); the witness is a
    // concrete expansion over the mediated schema.
    let got = relatively_contained_bp_witness(&q_eco, &s("qe"), &q_strong, &s("qs"), &v).unwrap();
    let w = got.expect_err("not contained");
    let w = w.expect("witness found within budget");
    assert!(w.subgoals.iter().any(|a| a.pred == "authored"), "{w}");
    assert!(w.subgoals.iter().all(|a| a.pred != "cites"), "{w}");
    // A holding containment reports Ok.
    let ok = relatively_contained_bp_witness(&q_eco, &s("qe"), &q_eco, &s("qe"), &v).unwrap();
    assert!(ok.is_ok());
}

#[test]
fn binding_patterns_vs_unrestricted_relative_containment() {
    // Without adornments, the broad query is NOT contained in the eco
    // query; the access restrictions are exactly what flips it.
    let v_free = LavSetting::parse(&[
        "Catalog(Author, Isbn) :- authored(Isbn, Author).",
        "PriceOf(Isbn, Price) :- price(Isbn, Price).",
    ])
    .unwrap();
    let q_eco = parse_program("qe(P) :- authored(I, eco), price(I, P).").unwrap();
    let q_all = parse_program("qa(P) :- price(I, P).").unwrap();
    assert!(!relatively_contained(&q_all, &s("qa"), &q_eco, &s("qe"), &v_free).unwrap());

    let mut v_bound = v_free.clone();
    v_bound.sources[0] = v_bound.sources[0].clone().with_adornment("bf");
    v_bound.sources[1] = v_bound.sources[1].clone().with_adornment("bf");
    assert!(relatively_contained_bp(&q_all, &s("qa"), &q_eco, &s("qe"), &v_bound).unwrap());
}

#[test]
fn multiple_adornments_model_multiple_access_paths() {
    // A phone book searchable by name OR by number ("it is
    // straightforward to generalize our results" — §4 on adornment sets).
    let mut v = LavSetting::parse(&["Phonebook(Name, Number) :- listing(Name, Number)."]).unwrap();
    v.sources[0] = v.sources[0]
        .clone()
        .with_adornment("bf")
        .with_adornment("fb");
    let db = Database::parse("Phonebook(alice, 111). Phonebook(bob, 222).").unwrap();

    // Starting from a name, the name->number path applies.
    let q_by_name = parse_program("q(N) :- listing(alice, N).").unwrap();
    let got =
        reachable_certain_answers(&q_by_name, &s("q"), &v, &db, &EvalOptions::default()).unwrap();
    assert!(got.contains(&vec![Term::int(111)]));

    // Starting from a number, the number->name path applies.
    let q_by_number = parse_program("q(N) :- listing(N, 222).").unwrap();
    let got =
        reachable_certain_answers(&q_by_number, &s("q"), &v, &db, &EvalOptions::default()).unwrap();
    assert!(got.contains(&vec![Term::sym("bob")]));

    // With ONLY the name-bound path, the by-number query reaches nothing.
    let mut v_one =
        LavSetting::parse(&["Phonebook(Name, Number) :- listing(Name, Number)."]).unwrap();
    v_one.sources[0] = v_one.sources[0].clone().with_adornment("bf");
    let got =
        reachable_certain_answers(&q_by_number, &s("q"), &v_one, &db, &EvalOptions::default())
            .unwrap();
    assert!(got.is_empty());

    // Executability with alternatives: a rule fine under "fb" but not
    // "bf" is executable when both paths exist.
    let r = parse_rule("q(N) :- Phonebook(N, 222).").unwrap();
    assert!(is_executable_rule(&r, &v));
    assert!(!is_executable_rule(&r, &v_one));
}

#[test]
fn reachable_answers_monotone_in_seeds() {
    // More query constants → larger dom → more reachable answers.
    let mut v = LavSetting::parse(&["Cites(P1, P2) :- cites(P1, P2)."]).unwrap();
    v.sources[0] = v.sources[0].clone().with_adornment("bf");
    let db = Database::parse("Cites(p0, p1). Cites(p5, p6).").unwrap();
    let q_one: Program = parse_program("q(Y) :- cites(X, Y), cites(p0, Z).").unwrap();
    let one = reachable_certain_answers(&q_one, &s("q"), &v, &db, &EvalOptions::default()).unwrap();
    let q_two = parse_program("q(Y) :- cites(X, Y), cites(p0, Z), cites(p5, W).").unwrap();
    let two = reachable_certain_answers(&q_two, &s("q"), &v, &db, &EvalOptions::default()).unwrap();
    assert_eq!(one.len(), 1);
    assert_eq!(two.len(), 2);
}
