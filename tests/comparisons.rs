//! Experiment E7: §5 — comparison predicates. Theorem 5.1 (semi-interval
//! everywhere), Theorems 5.2/5.3 (comparison-free contained query,
//! arbitrary comparisons elsewhere), and the underlying dense-order
//! containment machinery.

use relcont::containment::cq_contained;
use relcont::datalog::{parse_program, parse_query, Program, Symbol};
use relcont::mediator::relative::relatively_contained;
use relcont::mediator::schema::LavSetting;

fn s(n: &str) -> Symbol {
    Symbol::new(n)
}

fn prog(src: &str) -> Program {
    parse_program(src).unwrap()
}

#[test]
fn theorem_5_1_semi_interval_everywhere() {
    // Queries and views all carry semi-interval constraints.
    let v = LavSetting::parse(&[
        "Sixties(Car, Year) :- forsale(Car, Year), Year >= 1960, Year < 1970.",
        "PreWar(Car, Year) :- forsale(Car, Year), Year < 1939.",
        "AnyCar(Car, Year) :- forsale(Car, Year).",
    ])
    .unwrap();
    let antique = prog("qa(C) :- forsale(C, Y), Y < 1970.");
    let vintage = prog("qv(C) :- forsale(C, Y), Y < 1950.");
    let all = prog("qq(C) :- forsale(C, Y).");

    assert!(relatively_contained(&vintage, &s("qv"), &antique, &s("qa"), &v).unwrap());
    assert!(!relatively_contained(&antique, &s("qa"), &vintage, &s("qv"), &v).unwrap());
    assert!(relatively_contained(&antique, &s("qa"), &all, &s("qq"), &v).unwrap());
    assert!(!relatively_contained(&all, &s("qq"), &antique, &s("qa"), &v).unwrap());

    // Without the unconstrained source, every reachable car is < 1970.
    let narrowed = v.without("AnyCar");
    assert!(relatively_contained(&all, &s("qq"), &antique, &s("qa"), &narrowed).unwrap());
    // But not < 1950 (Sixties cars escape).
    assert!(!relatively_contained(&all, &s("qq"), &vintage, &s("qv"), &narrowed).unwrap());
    // Remove Sixties too and even vintage is implied? No: PreWar is
    // < 1939 < 1950.
    let only_prewar = narrowed.without("Sixties");
    assert!(relatively_contained(&all, &s("qq"), &vintage, &s("qv"), &only_prewar).unwrap());
}

#[test]
fn theorem_5_2_5_3_arbitrary_comparisons_on_the_right() {
    // Q1 comparison-free; Q2 and the views carry arbitrary comparisons
    // (including variable-variable ones).
    let v = LavSetting::parse(&[
        // Sells pairs where the asking price exceeds the estimate.
        "Overpriced(Car, Ask, Est) :- listing(Car, Ask, Est), Ask > Est.",
        "AllListings(Car, Ask, Est) :- listing(Car, Ask, Est).",
    ])
    .unwrap();
    let q_over = prog("qo(C) :- listing(C, A, E), A > E.");
    let q_plain = prog("qp(C) :- listing(C, A, E).");

    // Everything retrievable from Overpriced satisfies A > E; the plain
    // query is NOT relatively contained in the overpriced one because
    // AllListings retrieves everything.
    assert!(!relatively_contained(&q_plain, &s("qp"), &q_over, &s("qo"), &v).unwrap());
    let only_over = v.without("AllListings");
    assert!(relatively_contained(&q_plain, &s("qp"), &q_over, &s("qo"), &only_over).unwrap());
    // The other direction (Q1 with comparisons, views with var-var
    // comparisons) is outside Theorems 5.1–5.3 and must be reported as
    // unsupported rather than answered wrongly.
    assert!(
        relatively_contained(&q_over, &s("qo"), &q_plain, &s("qp"), &only_over).is_err(),
        "arbitrary comparisons in Q1 are an open problem"
    );
}

#[test]
fn klug_test_classics() {
    // The dense-order containment test behind the theorems.
    let le = parse_query("q() :- r(A), s(B), A <= B.").unwrap();
    let lt = parse_query("q() :- r(A), s(B), A < B.").unwrap();
    let free = parse_query("q() :- r(X), s(Y).").unwrap();
    assert!(cq_contained(&lt, &le));
    assert!(!cq_contained(&le, &lt));
    assert!(cq_contained(&lt, &free));
    assert!(!cq_contained(&free, &lt));

    // The union-split phenomenon: only the union of the two orders
    // contains the unconstrained query.
    let u = relcont::datalog::Ucq::new(vec![
        parse_query("q() :- r(A), s(B), A < B.").unwrap(),
        parse_query("q() :- r(A), s(B), A >= B.").unwrap(),
    ])
    .unwrap();
    assert!(relcont::containment::cq_contained_in_ucq(&free, &u));
}

#[test]
fn semi_interval_relative_equivalence() {
    // Two syntactically different windows that coincide on everything
    // retrievable.
    let v = LavSetting::parse(&["Narrow(C, Y) :- stock(C, Y), Y < 1950."]).unwrap();
    let qa = prog("qa(C) :- stock(C, Y), Y < 1960.");
    let qb = prog("qb(C) :- stock(C, Y), Y < 1955.");
    // Both plans are just Narrow; relative equivalence holds though the
    // queries differ classically.
    assert!(relatively_contained(&qa, &s("qa"), &qb, &s("qb"), &v).unwrap());
    assert!(relatively_contained(&qb, &s("qb"), &qa, &s("qa"), &v).unwrap());
    let ca = parse_query("qa(C) :- stock(C, Y), Y < 1960.").unwrap();
    let cb = parse_query("qb(C) :- stock(C, Y), Y < 1955.").unwrap();
    assert!(!cq_contained(&ca, &cb));
}

#[test]
fn theorem_5_1_positive_union_queries() {
    // Theorem 5.1 is stated for *positive* queries: unions with
    // semi-interval constraints.
    let v = LavSetting::parse(&[
        "Cheap(C, P) :- sale(C, P), P < 100.",
        "Luxury(C, P) :- sale(C, P), P > 10000.",
    ])
    .unwrap();
    // A union query: bargains or splurges.
    let extremes = prog(
        "qe(C) :- sale(C, P), P < 50.
         qe(C) :- sale(C, P), P > 20000.",
    );
    let anything = prog("qa(C) :- sale(C, P).");
    assert!(relatively_contained(&extremes, &s("qe"), &anything, &s("qa"), &v).unwrap());
    // The union plan has two disjuncts (one per branch).
    let plan =
        relcont::mediator::relative::max_contained_ucq_plan(&extremes, &s("qe"), &v).unwrap();
    assert_eq!(plan.disjuncts.len(), 2, "{plan}");
    // Everything retrievable is < 100 or > 10000: the full-range query is
    // NOT contained in the extremes query (a 99-priced car answers qa,
    // and is retrievable, but is not < 50).
    assert!(!relatively_contained(&anything, &s("qa"), &extremes, &s("qe"), &v).unwrap());
    // But it IS contained in the "under 100 or over 10000" union.
    let bands = prog(
        "qb(C) :- sale(C, P), P < 100.
         qb(C) :- sale(C, P), P > 10000.",
    );
    assert!(relatively_contained(&anything, &s("qa"), &bands, &s("qb"), &v).unwrap());
}

#[test]
fn boundary_strictness_matters() {
    let v = LavSetting::parse(&["UpTo1970(C, Y) :- stock(C, Y), Y <= 1970."]).unwrap();
    let strict = prog("qs(C) :- stock(C, Y), Y < 1970.");
    let weak = prog("qw(C) :- stock(C, Y), Y <= 1970.");
    assert!(relatively_contained(&strict, &s("qs"), &weak, &s("qw"), &v).unwrap());
    // A year-1970 car is retrievable and answers qw but not qs.
    assert!(!relatively_contained(&weak, &s("qw"), &strict, &s("qs"), &v).unwrap());
}

#[test]
fn equality_pinning_constants() {
    // Views pin a column to a constant; = in queries interacts with it.
    let v = LavSetting::parse(&[
        "TopRated(M, R) :- review(M, R, 10).",
        "Rated(M, R, S) :- review(M, R, S), S >= 9.",
    ])
    .unwrap();
    let q_top = prog("qt(M) :- review(M, R, 10).");
    let q_any = prog("qn(M) :- review(M, R, S).");
    let q_nine = prog("q9(M) :- review(M, R, S), S >= 9.");
    assert!(relatively_contained(&q_top, &s("qt"), &q_any, &s("qn"), &v).unwrap());
    assert!(relatively_contained(&q_top, &s("qt"), &q_nine, &s("q9"), &v).unwrap());
    // Everything retrievable is rated >= 9.
    assert!(relatively_contained(&q_any, &s("qn"), &q_nine, &s("q9"), &v).unwrap());
    // But not everything is rated exactly 10.
    assert!(!relatively_contained(&q_any, &s("qn"), &q_top, &s("qt"), &v).unwrap());
}
