//! Experiment E1: every claim of the paper's Example 1, end to end,
//! through the public API.

use relcont::containment::cq_contained;
use relcont::datalog::eval::EvalOptions;
use relcont::datalog::{parse_program, parse_query, Database, Program, Symbol, Term};
use relcont::mediator::certain::certain_answers;
use relcont::mediator::relative::{
    relatively_contained, relatively_contained_by_plans, relatively_equivalent,
};
use relcont::mediator::schema::LavSetting;

fn views() -> LavSetting {
    LavSetting::parse(&[
        "RedCars(CarNo, Model, Year) :- CarDesc(CarNo, Model, red, Year).",
        "AntiqueCars(CarNo, Model, Year) :- CarDesc(CarNo, Model, Color, Year), Year < 1970.",
        "CarAndDriver(Model, Review) :- Review(Model, Review, 10).",
    ])
    .unwrap()
}

fn q1() -> Program {
    parse_program(
        "q1(CarNo, Review) :- CarDesc(CarNo, Model, C, Y), Review(Model, Review, Rating).",
    )
    .unwrap()
}

fn q2() -> Program {
    parse_program("q2(CarNo, Review) :- CarDesc(CarNo, Model, C, Y), Review(Model, Review, 10).")
        .unwrap()
}

fn q3() -> Program {
    parse_program(
        "q3(CarNo, Review) :- CarDesc(CarNo, Model, C, Y), Review(Model, Review, 10), Y < 1970.",
    )
    .unwrap()
}

fn s(n: &str) -> Symbol {
    Symbol::new(n)
}

#[test]
fn classical_claims() {
    // "In the traditional context, the query Q2 is contained in query Q1
    //  ... but Q1 is not contained in Q2."
    let (a, b) = (
        parse_query(&q1().rules()[0].to_string()).unwrap(),
        parse_query(&q2().rules()[0].to_string()).unwrap(),
    );
    assert!(cq_contained(&b, &a));
    assert!(!cq_contained(&a, &b));
    // "Likewise, Q3 is contained in Q2, but not vice versa."
    let c = parse_query(&q3().rules()[0].to_string()).unwrap();
    assert!(cq_contained(&c, &b));
    assert!(!cq_contained(&b, &c));
}

#[test]
fn relative_claims() {
    let v = views();
    // "Q1 is contained in Q2 relative to the sources, and in fact the two
    //  queries return the same certain answers."
    assert!(relatively_contained(&q1(), &s("q1"), &q2(), &s("q2"), &v).unwrap());
    assert!(relatively_equivalent(&q1(), &s("q1"), &q2(), &s("q2"), &v).unwrap());
    // "Q1 is not contained in Q3 relative to the sources."
    assert!(!relatively_contained(&q1(), &s("q1"), &q3(), &s("q3"), &v).unwrap());
    // "If the RedCars source were not available, then Q1 would be
    //  contained in Q3 relative to the available sources."
    let without = v.without("RedCars");
    assert!(relatively_contained(&q1(), &s("q1"), &q3(), &s("q3"), &without).unwrap());
}

#[test]
fn relative_containment_routes_agree() {
    // The expansion route (Thm 5.2 style) and the plan-comparison route
    // (Thm 3.1/5.1 style) must agree on every pair.
    let v = views();
    let queries = [(q1(), "q1"), (q2(), "q2"), (q3(), "q3")];
    for (qa, na) in &queries {
        for (qb, nb) in &queries {
            let exp = relatively_contained(qa, &s(na), qb, &s(nb), &v).unwrap();
            let plans = relatively_contained_by_plans(qa, &s(na), qb, &s(nb), &v).unwrap();
            assert_eq!(exp, plans, "{na} vs {nb}");
        }
    }
}

#[test]
fn certain_answers_coincide_for_q1_q2() {
    let v = views();
    let db = Database::parse(
        "RedCars(c1, corolla, 1988). RedCars(c3, beetle, 1971).
         AntiqueCars(c2, ford, 1955).
         CarAndDriver(corolla, nice). CarAndDriver(ford, classic).
         CarAndDriver(unusedmodel, meh).",
    )
    .unwrap();
    let opts = EvalOptions::default();
    let a1 = certain_answers(&q1(), &s("q1"), &v, &db, &opts).unwrap();
    let a2 = certain_answers(&q2(), &s("q2"), &v, &db, &opts).unwrap();
    let set1: std::collections::BTreeSet<_> = a1.tuples().iter().cloned().collect();
    let set2: std::collections::BTreeSet<_> = a2.tuples().iter().cloned().collect();
    assert_eq!(set1, set2);
    assert_eq!(set1.len(), 2);
    assert!(set1.contains(&vec![Term::sym("c1"), Term::sym("nice")]));
    assert!(set1.contains(&vec![Term::sym("c2"), Term::sym("classic")]));

    // Q3 keeps only the antique's review — "it is possible to retrieve
    // reviews of red cars made after 1970" is exactly what Q3 loses.
    let a3 = certain_answers(&q3(), &s("q3"), &v, &db, &opts).unwrap();
    assert_eq!(a3.len(), 1);
    assert!(a3.contains(&vec![Term::sym("c2"), Term::sym("classic")]));
}

#[test]
fn relative_containment_respects_monotone_source_removal_on_example() {
    // Removing sources can only shrink certain answers of both sides;
    // on this example every containment that holds with all three
    // sources still holds with fewer.
    let v = views();
    let subsets = [
        v.clone(),
        v.without("RedCars"),
        v.without("AntiqueCars"),
        v.without("CarAndDriver"),
        v.without("RedCars").without("AntiqueCars"),
    ];
    // Q3 ⊑ Q2 classically, hence under every source subset.
    for sub in &subsets {
        assert!(relatively_contained(&q3(), &s("q3"), &q2(), &s("q2"), sub).unwrap());
    }
    // Without CarAndDriver no query has any certain answers: everything
    // is relatively contained in everything.
    let no_reviews = v.without("CarAndDriver");
    assert!(relatively_contained(&q2(), &s("q2"), &q3(), &s("q3"), &no_reviews).unwrap());
}
