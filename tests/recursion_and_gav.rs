//! Experiments E6 (Theorem 3.2 recursion cases) and E11 (the GAV
//! corollary).

use relcont::datalog::{parse_program, Program, Symbol};
use relcont::mediator::gav::{gav_unfold, relatively_contained_gav, GavSetting};
use relcont::mediator::relative::{relatively_contained, RelativeError};
use relcont::mediator::schema::LavSetting;

fn s(n: &str) -> Symbol {
    Symbol::new(n)
}

fn prog(src: &str) -> Program {
    parse_program(src).unwrap()
}

#[test]
fn theorem_3_2_recursive_contained_side() {
    let v = LavSetting::parse(&["V(X, Y) :- edge(X, Y)."]).unwrap();
    let tc = prog("t(X, Y) :- edge(X, Y). t(X, Z) :- t(X, Y), edge(Y, Z).");

    // TC ⊑ "endpoints touch edges".
    let loose = prog("s(X, Y) :- edge(X, A), edge(B, Y).");
    assert!(relatively_contained(&tc, &s("t"), &loose, &s("s"), &v).unwrap());
    // TC ⋢ "direct edge".
    let direct = prog("d(X, Y) :- edge(X, Y).");
    assert!(!relatively_contained(&tc, &s("t"), &direct, &s("d"), &v).unwrap());
    // TC ⋢ "path of length exactly two from X".
    let two = prog("w(X, Z) :- edge(X, Y), edge(Y, Z).");
    assert!(!relatively_contained(&tc, &s("t"), &two, &s("w"), &v).unwrap());
}

#[test]
fn theorem_3_2_with_projecting_views() {
    // The view hides edge targets: the recursive plan degenerates.
    let v = LavSetting::parse(&["V(X) :- edge(X, Y)."]).unwrap();
    let tc = prog("t(X, Y) :- edge(X, Y). t(X, Z) :- t(X, Y), edge(Y, Z).");
    let direct = prog("d(X, Y) :- edge(X, Y).");
    // No certain answers for either: contained both ways.
    assert!(relatively_contained(&tc, &s("t"), &direct, &s("d"), &v).unwrap());
    assert!(relatively_contained(&direct, &s("d"), &tc, &s("t"), &v).unwrap());
}

#[test]
fn theorem_3_2_recursive_containing_side() {
    let v = LavSetting::parse(&["V(X, Y) :- edge(X, Y)."]).unwrap();
    let tc = prog("t(X, Y) :- edge(X, Y). t(X, Z) :- t(X, Y), edge(Y, Z).");
    // Chains of length 3 ⊑ TC.
    let three = prog("w(X, W) :- edge(X, Y), edge(Y, Z), edge(Z, W).");
    assert!(relatively_contained(&three, &s("w"), &tc, &s("t"), &v).unwrap());
    // Reversed chain ⋢ TC.
    let rev = prog("r(X, Y) :- edge(Y, X).");
    assert!(!relatively_contained(&rev, &s("r"), &tc, &s("t"), &v).unwrap());
}

#[test]
fn doubly_recursive_rejected() {
    let v = LavSetting::parse(&["V(X, Y) :- edge(X, Y)."]).unwrap();
    let tc = prog("t(X, Y) :- edge(X, Y). t(X, Z) :- t(X, Y), edge(Y, Z).");
    assert!(matches!(
        relatively_contained(&tc, &s("t"), &tc, &s("t"), &v),
        Err(RelativeError::Unsupported(_))
    ));
}

#[test]
fn mutual_recursion_through_helper() {
    let v = LavSetting::parse(&["V(X, Y) :- edge(X, Y)."]).unwrap();
    let even_odd = prog(
        "even(X, X) :- edge(X, Y).
         even(X, Z) :- odd(X, Y), edge(Y, Z).
         odd(X, Z) :- even(X, Y), edge(Y, Z).",
    );
    let loose = prog("s(X, Y) :- edge(X, A), edge(B, C).");
    // Every even/odd expansion starts from edge(X, ...) so containment in
    // the loose pattern holds... head Y of `even` must also be covered:
    // even(X, X) pattern binds both to X. Check it does not crash and is
    // decided.
    let r = relatively_contained(&even_odd, &s("even"), &loose, &s("s"), &v);
    assert!(r.is_ok());
}

#[test]
fn gav_corollary_basics() {
    let setting = GavSetting::parse(
        "car(Id, Model) :- dealerA(Id, Model).
         car(Id, Model) :- dealerB(Id, Model, Price).
         cheap(Id) :- dealerB(Id, M, P), P < 10000.",
    )
    .unwrap();
    let q_union = prog("q1(M) :- car(I, M).");
    let q_a = prog("q2(M) :- dealerA(I, M).");
    assert!(relatively_contained_gav(&q_a, &s("q2"), &q_union, &s("q1"), &setting).unwrap());
    assert!(!relatively_contained_gav(&q_union, &s("q1"), &q_a, &s("q2"), &setting).unwrap());

    // With comparisons through GAV definitions.
    let q_cheap_b = prog("q3(I) :- cheap(I).");
    let q_all_b = prog("q4(I) :- dealerB(I, M, P).");
    assert!(relatively_contained_gav(&q_cheap_b, &s("q3"), &q_all_b, &s("q4"), &setting).unwrap());
    assert!(!relatively_contained_gav(&q_all_b, &s("q4"), &q_cheap_b, &s("q3"), &setting).unwrap());
}

#[test]
fn gav_unfolding_shape() {
    let setting = GavSetting::parse("m(X, Z) :- s1(X, Y), s2(Y, Z).").unwrap();
    let q = prog("q(X) :- m(X, X).");
    let u = gav_unfold(&q, &s("q"), &setting).unwrap();
    assert_eq!(u.disjuncts.len(), 1);
    let d = &u.disjuncts[0];
    assert_eq!(d.subgoals.len(), 2);
    assert_eq!(d.subgoals[0].pred, "s1");
    assert_eq!(d.subgoals[1].pred, "s2");
    // The diagonal constraint survives unfolding.
    assert_eq!(d.subgoals[0].args[0], d.subgoals[1].args[1]);
}

#[test]
fn gav_vs_lav_on_mirroring_views() {
    // When GAV definitions and LAV views both just mirror relations,
    // both notions coincide with ordinary containment.
    let gav = GavSetting::parse("p(X, Y) :- sp(X, Y).").unwrap();
    let lav = LavSetting::parse(&["sp(X, Y) :- p(X, Y)."]).unwrap();
    let qa = prog("qa(X) :- p(X, Y).");
    let qb = prog("qb(X) :- p(X, X).");
    let g1 = relatively_contained_gav(&qb, &s("qb"), &qa, &s("qa"), &gav).unwrap();
    let l1 = relatively_contained(&qb, &s("qb"), &qa, &s("qa"), &lav).unwrap();
    assert_eq!(g1, l1);
    assert!(g1);
    let g2 = relatively_contained_gav(&qa, &s("qa"), &qb, &s("qb"), &gav).unwrap();
    let l2 = relatively_contained(&qa, &s("qa"), &qb, &s("qb"), &lav).unwrap();
    assert_eq!(g2, l2);
    assert!(!g2);
}
