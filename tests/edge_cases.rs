//! Edge cases and failure-path coverage across the workspace: parser
//! errors, validation errors, evaluation limits, decision-procedure
//! budgets, and degenerate inputs.

use relcont::containment::datalog_ucq::{
    datalog_contained_in_ucq, DatalogUcqError, FixpointBudget,
};
use relcont::containment::{cq_contained, ucq_contained};
use relcont::datalog::eval::{answers, evaluate, EvalError, EvalOptions};
use relcont::datalog::{
    parse_program, parse_query, parse_rule, validate_program, validate_rule, Database, Program,
    Symbol, Term, Ucq, ValidationError,
};
use relcont::mediator::relative::{relatively_contained, RelativeError};
use relcont::mediator::schema::LavSetting;

#[test]
fn parser_error_paths() {
    // Missing dot.
    assert!(parse_rule("q(X) :- r(X)").is_err());
    // Bad operator.
    assert!(parse_rule("q(X) :- r(X), X ~ 3.").is_err());
    // Unterminated quote.
    assert!(parse_rule("q(X) :- r(X, 'oops.").is_err());
    // Dangling comma.
    assert!(parse_rule("q(X) :- r(X),.").is_err());
    // Empty program parses to zero rules.
    assert_eq!(
        parse_program("  % just a comment\n").unwrap().rules().len(),
        0
    );
    // Trailing garbage after a complete rule.
    assert!(parse_rule("q(X) :- r(X). extra").is_err());
    // Error positions are 1-based and plausible.
    let e = parse_rule("q(X) :-\n  r(X) !").unwrap_err();
    assert_eq!(e.line, 2);
}

#[test]
fn parser_tolerates_formatting() {
    let variants = [
        "q(X):-r(X,Y),Y<1970.",
        "q( X ) :- r( X , Y ) , Y < 1970 .",
        "q(X) :-\n\tr(X, Y),\n\tY < 1970.",
        "% leading comment\nq(X) :- r(X, Y), Y < 1970. % trailing",
    ];
    let expected = parse_rule("q(X) :- r(X, Y), Y < 1970.").unwrap();
    for v in variants {
        assert_eq!(parse_rule(v).unwrap(), expected, "{v}");
    }
}

#[test]
fn validation_error_variants() {
    let unsafe_rule = parse_rule("q(X, Z) :- r(X).").unwrap();
    assert!(matches!(
        validate_rule(&unsafe_rule),
        Err(ValidationError::UnsafeHeadVar { .. })
    ));
    let unrestricted = parse_rule("q(X) :- r(X), W < 3.").unwrap();
    assert!(matches!(
        validate_rule(&unrestricted),
        Err(ValidationError::UnrestrictedComparisonVar { .. })
    ));
    let illtyped = parse_rule("q(X) :- r(X), X < red.").unwrap();
    assert!(matches!(
        validate_rule(&illtyped),
        Err(ValidationError::IllTypedComparison { .. })
    ));
    let mixed = parse_program("q(X) :- r(X). p(X) :- r(X, X).").unwrap();
    assert!(matches!(
        validate_program(&mixed),
        Err(ValidationError::ArityMismatch { .. })
    ));
    // Errors render human-readably.
    let msg = validate_rule(&unsafe_rule).unwrap_err().to_string();
    assert!(msg.contains("unsafe"), "{msg}");
}

#[test]
fn evaluation_limits_and_errors() {
    // Iteration limit.
    let p = parse_program("n(0). n(f(X)) :- n(X).").unwrap();
    let tight = EvalOptions {
        max_term_depth: 3,
        ..EvalOptions::default()
    };
    assert!(matches!(
        evaluate(&p, &Database::new(), &tight),
        Err(EvalError::TermDepthLimit(3))
    ));

    // Unbound comparison (unsafe rule slips past the caller).
    let p2 = parse_program("q(X) :- r(X), Z < 3.").unwrap();
    let db = Database::parse("r(1).").unwrap();
    assert!(matches!(
        evaluate(&p2, &db, &EvalOptions::default()),
        Err(EvalError::UnboundComparison(_))
    ));

    // Non-ground head.
    let p3 = parse_program("q(X, W) :- r(X).").unwrap();
    assert!(matches!(
        evaluate(&p3, &db, &EvalOptions::default()),
        Err(EvalError::NonGroundHead(_))
    ));

    // Errors render.
    let e = evaluate(&p2, &db, &EvalOptions::default()).unwrap_err();
    assert!(e.to_string().contains("comparison"), "{e}");
}

#[test]
fn empty_database_and_empty_program() {
    let p = parse_program("q(X) :- r(X).").unwrap();
    let rel = answers(
        &p,
        &Database::new(),
        &Symbol::new("q"),
        &EvalOptions::default(),
    )
    .unwrap();
    assert!(rel.is_empty());
    let empty = Program::default();
    let out = evaluate(
        &empty,
        &Database::parse("r(1).").unwrap(),
        &EvalOptions::default(),
    )
    .unwrap();
    assert_eq!(out.total_len(), 0);
}

#[test]
fn datalog_ucq_budget_and_input_errors() {
    // Budget: a tiny budget fails loudly instead of hanging.
    let p = parse_program("t(X, Y) :- e(X, Y). t(X, Z) :- t(X, Y), t(Y, Z).").unwrap();
    let q = Ucq::single(parse_query("t(A, B) :- e(A, B).").unwrap());
    let tiny = FixpointBudget {
        max_type_entries: 1,
        ..FixpointBudget::default()
    };
    let err = datalog_contained_in_ucq(&p, &Symbol::new("t"), &q, &tiny).unwrap_err();
    match err {
        DatalogUcqError::Resource(e) => {
            let (stage, consumed, limit) = (e.stage, e.consumed, e.limit);
            assert_eq!(stage, "fixpoint/type_entries");
            assert_eq!(e.kind, relcont::guard::ResourceKind::Budget);
            assert_eq!(limit, 1);
            assert!(
                consumed > limit,
                "consumed {consumed} should exceed limit {limit}"
            );
            let msg = e.to_string();
            assert!(
                msg.contains("fixpoint/type_entries") && msg.contains("of 1 units"),
                "{msg}"
            );
        }
        other => panic!("expected budget error, got {other:?}"),
    }

    // Arity mismatch.
    let q1 = Ucq::single(parse_query("t(A) :- e(A, B).").unwrap());
    assert!(matches!(
        datalog_contained_in_ucq(&p, &Symbol::new("t"), &q1, &FixpointBudget::default()),
        Err(DatalogUcqError::ArityMismatch)
    ));

    // Undefined answer predicate: vacuously contained.
    assert!(
        datalog_contained_in_ucq(&p, &Symbol::new("zz"), &q, &FixpointBudget::default()).unwrap()
    );
}

#[test]
fn relative_unsupported_cases_are_reported() {
    let views = LavSetting::parse(&["V(X, Y) :- p(X, Y)."]).unwrap();
    // Arbitrary (variable-variable) comparisons in the contained query.
    let q1 = parse_program("q1(X) :- p(X, Y), p(Y, Z), Y < Z.").unwrap();
    let q2 = parse_program("q2(X) :- p(X, Y).").unwrap();
    let err =
        relatively_contained(&q1, &Symbol::new("q1"), &q2, &Symbol::new("q2"), &views).unwrap_err();
    assert!(matches!(err, RelativeError::Unsupported(_)));
    assert!(err.to_string().contains("open problem"), "{err}");

    // Recursive query against views with comparisons.
    let views_cmp = LavSetting::parse(&["W(X, Y) :- p(X, Y), X < 3."]).unwrap();
    let rec = parse_program("t(X, Y) :- p(X, Y). t(X, Z) :- t(X, Y), p(Y, Z).").unwrap();
    assert!(matches!(
        relatively_contained(&rec, &Symbol::new("t"), &q2, &Symbol::new("q2"), &views_cmp),
        Err(RelativeError::Unsupported(_))
    ));
}

#[test]
fn zero_ary_queries_and_boolean_containment() {
    let views = LavSetting::parse(&["V() :- p(X, X)."]).unwrap();
    let q1 = parse_program("q1() :- p(X, X).").unwrap();
    let q2 = parse_program("q2() :- p(X, Y).").unwrap();
    // q1 ⊆ q2 classically.
    assert!(
        relatively_contained(&q1, &Symbol::new("q1"), &q2, &Symbol::new("q2"), &views).unwrap()
    );
    // q2's only plan is through V, whose expansion is diagonal: also
    // contained relative to the sources.
    assert!(
        relatively_contained(&q2, &Symbol::new("q2"), &q1, &Symbol::new("q1"), &views).unwrap()
    );
}

#[test]
fn self_join_views_and_repeated_columns() {
    let views = LavSetting::parse(&["Diag(X) :- p(X, X)."]).unwrap();
    let q_diag = parse_program("qd(X) :- p(X, X).").unwrap();
    let q_pair = parse_program("qp(X) :- p(X, Y).").unwrap();
    assert!(relatively_contained(
        &q_pair,
        &Symbol::new("qp"),
        &q_diag,
        &Symbol::new("qd"),
        &views
    )
    .unwrap());
}

#[test]
fn ucq_containment_with_empty_sides() {
    let a = Ucq::empty("q", 1);
    let b = Ucq::single(parse_query("q(X) :- r(X).").unwrap());
    assert!(ucq_contained(&a, &a));
    assert!(ucq_contained(&a, &b));
    assert!(!ucq_contained(&b, &a));
}

#[test]
fn containment_with_quoted_and_negative_constants() {
    let q1 = parse_query("q(X) :- r(X, 'de luxe', -3).").unwrap();
    let q2 = parse_query("q(X) :- r(X, Y, Z).").unwrap();
    assert!(cq_contained(&q1, &q2));
    assert!(!cq_contained(&q2, &q1));
    let q3 = parse_query("q(X) :- r(X, 'de luxe', Z), Z < 0.").unwrap();
    assert!(cq_contained(&q1, &q3));
}

#[test]
fn function_terms_round_trip_through_database() {
    // Skolem values can be stored, printed, re-parsed, and joined on.
    let p = parse_program("s(f(X, g(Y))) :- e(X, Y).").unwrap();
    let db = Database::parse("e(1, 2).").unwrap();
    let idb = evaluate(&p, &db, &EvalOptions::default()).unwrap();
    let printed = idb.to_string();
    let db2 = Database::parse(&printed).unwrap();
    assert_eq!(db2.facts(), idb.facts());
    assert_eq!(
        db2.facts()[0].args[0],
        Term::app("f", vec![Term::int(1), Term::app("g", vec![Term::int(2)])])
    );
}

#[test]
fn serde_round_trips() {
    // Programs, queries, and LAV settings serialize to JSON and back.
    let prog = parse_program(
        "q1(CarNo, Review) :- CarDesc(CarNo, Model, C, Y), Review(Model, Review, 10), Y < 1970.",
    )
    .unwrap();
    let json = serde_json::to_string(&prog).unwrap();
    let back: Program = serde_json::from_str(&json).unwrap();
    assert_eq!(prog, back);

    let mut views = LavSetting::parse(&[
        "RedCars(C, M, Y) :- CarDesc(C, M, red, Y).",
        "PriceOf(I, P) :- price(I, P).",
    ])
    .unwrap();
    views.sources[1] = views.sources[1].clone().with_adornment("bf").complete();
    let json = serde_json::to_string_pretty(&views).unwrap();
    let back: LavSetting = serde_json::from_str(&json).unwrap();
    assert_eq!(views, back);

    // Function terms and rationals survive too.
    let skolem = parse_program("p(f(X, 2.5)) :- v(X).").unwrap();
    let json = serde_json::to_string(&skolem).unwrap();
    let back: Program = serde_json::from_str(&json).unwrap();
    assert_eq!(skolem, back);
}

#[test]
fn csv_loading_edge_cases() {
    let mut db = Database::new();
    // Mixed numeric and symbolic values, comments, blank lines.
    let n = db.load_csv("m", "a, 1\n\n# comment\nb, -2\n").unwrap();
    assert_eq!(n, 2);
    assert!(db.contains_atom(&relcont::datalog::Atom::new(
        "m",
        vec![Term::sym("a"), Term::int(1)]
    )));
    // Ragged rows are rejected with a line number.
    let err = db.load_csv("m", "x, 1\ny\n").unwrap_err();
    assert_eq!(err.line, 2);
}

#[test]
fn provenance_through_plans() {
    use relcont::mediator::certain::certain_answer_support;
    use relcont::mediator::schema::LavSetting;
    let views = LavSetting::parse(&[
        "RedCars(C, M, Y) :- CarDesc(C, M, red, Y).",
        "CarAndDriver(M, R) :- Review(M, R, 10).",
    ])
    .unwrap();
    let q = parse_program("q(C, R) :- CarDesc(C, M, Col, Y), Review(M, R, S).").unwrap();
    let db = Database::parse(
        "RedCars(c1, corolla, 1988). RedCars(c9, beetle, 1970). CarAndDriver(corolla, nice).",
    )
    .unwrap();
    let support = certain_answer_support(
        &q,
        &Symbol::new("q"),
        &views,
        &db,
        &vec![Term::sym("c1"), Term::sym("nice")],
        &EvalOptions::default(),
    )
    .unwrap()
    .expect("certain");
    // Exactly the two contributing source facts; the beetle row is not
    // involved.
    assert_eq!(support.len(), 2, "{support:?}");
    assert!(support
        .iter()
        .any(|(p, t)| p == &Symbol::new("RedCars") && t[0] == Term::sym("c1")));
    assert!(support.iter().all(|(_, t)| t[0] != Term::sym("c9")));
    // A non-answer yields None.
    assert!(certain_answer_support(
        &q,
        &Symbol::new("q"),
        &views,
        &db,
        &vec![Term::sym("c9"), Term::sym("nice")],
        &EvalOptions::default(),
    )
    .unwrap()
    .is_none());
}
