//! Resumable-verdict differential tests: a run continued from a
//! checkpoint must reach exactly the verdict a one-shot unlimited run
//! would, wherever the original run stopped — before the first disjunct,
//! mid-plan, after the last disjunct, or inside MiniCon planning before
//! the per-disjunct loop even starts.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use relcont::datalog::{parse_program, Program, Symbol};
use relcont::guard::stage;
use relcont::mediator::relative::{relatively_contained_verdict, Verdict};
use relcont::mediator::schema::{example1_sources, LavSetting};
use relcont::mediator::workloads::{query_program, random_query, random_views, Shape};
use relcont::serve::{Checkpoint, Request, ServeConfig, ServeCore, Tier};

fn sym(s: &str) -> Symbol {
    Symbol::new(s)
}

fn q1_prog() -> Program {
    parse_program(
        "q1(CarNo, Review) :- CarDesc(CarNo, Model, C, Y), Review(Model, Review, Rating).",
    )
    .unwrap()
}

fn q2_prog() -> Program {
    parse_program("q2(CarNo, Review) :- CarDesc(CarNo, Model, C, Y), Review(Model, Review, 10).")
        .unwrap()
}

/// The Example 1 request whose one-shot unlimited verdict is `Contained`.
fn contained_request() -> Request {
    Request::new(q1_prog(), sym("q1"), q2_prog(), sym("q2"))
}

/// A core whose ladder never degrades: these tests starve runs on
/// purpose, and a tier walk would change which procedure answers.
fn pinned_core() -> ServeCore {
    let cfg = ServeConfig {
        trip_threshold: u32::MAX,
        ..ServeConfig::default()
    };
    ServeCore::new(example1_sources(), cfg)
}

/// Sweeps budgets until a starved run checkpoints with the requested
/// amount of per-disjunct progress (`want_proven`: whether at least one
/// disjunct must already be proven). Returns the checkpoint and the
/// budget that produced it.
fn starved_checkpoint(core: &ServeCore, want_proven: bool) -> (Checkpoint, u64) {
    for budget in 1..5_000 {
        let mut req = contained_request();
        req.budget = Some(budget);
        let resp = core.handle(&req, 0).expect("starved run");
        if let Verdict::Unknown(p) = &resp.verdict {
            if let Some(cp) = resp.checkpoint {
                if p.disjuncts_proven.is_empty() != want_proven {
                    return (cp, budget);
                }
            }
        }
    }
    panic!("no budget produced the requested checkpoint shape");
}

/// Checkpoint taken at disjunct 0: the budget ran out after planning but
/// before any disjunct was proven. Resuming skips nothing, yet must
/// still reach the one-shot verdict.
#[test]
fn resume_from_checkpoint_at_disjunct_zero() {
    let core = pinned_core();
    let (cp, _) = starved_checkpoint(&core, false);
    assert!(cp.proven.is_empty());
    assert!(cp.disjuncts_total > 0);

    let mut retry = contained_request();
    retry.checkpoint = Some(cp);
    let resp = core.handle(&retry, 0).expect("resumed run");
    assert!(resp.resumed);
    assert_eq!(resp.verdict, Verdict::Contained);
}

/// Checkpoint claiming every disjunct proven (the honest state after the
/// last disjunct of a contained pair): the resumed run skips the whole
/// loop and must report `Contained` immediately.
#[test]
fn resume_from_checkpoint_after_last_disjunct() {
    let core = pinned_core();
    // `starve_budget` is big enough to finish planning but too small to
    // prove even one disjunct: any verdict it reaches below must come
    // from the checkpoint, not from re-proving.
    let (cp, starve_budget) = starved_checkpoint(&core, false);

    let mut req = contained_request();
    req.checkpoint = Some(Checkpoint {
        fingerprint: req.fingerprint(&core.snapshot()),
        disjuncts_total: cp.disjuncts_total,
        proven: (0..cp.disjuncts_total).collect(),
        memo_resident: 0,
        epoch: None,
        preds: None,
    });
    req.budget = Some(starve_budget);
    let resp = core.handle(&req, 0).expect("resumed run");
    assert!(resp.resumed);
    assert_eq!(resp.verdict, Verdict::Contained);
}

/// Budget 1 at the MiniCon-only tier trips inside `minicon_rewritings`
/// before any disjunct is examined: no progress, no checkpoint — and the
/// plain retry with an adequate budget still reaches the one-shot
/// verdict (`NotContained`, which this tier may prove).
#[test]
fn trip_inside_minicon_before_any_disjunct_then_retry() {
    let views = LavSetting::parse(&["v(X, Y) :- e(X, Y)."]).unwrap();
    let far = parse_program("qf(X, Z) :- e(X, Y), e(Y, Z).").unwrap();
    let near = parse_program("qn(X, Z) :- e(X, Z).").unwrap();
    let cfg = ServeConfig {
        trip_threshold: 1,
        recover_threshold: 100,
        ..ServeConfig::default()
    };
    let core = ServeCore::new(views, cfg);
    let req = Request::new(far, sym("qf"), near, sym("qn"));

    // Two starved runs walk the ladder to the bottom tier.
    let mut starved = req.clone();
    starved.budget = Some(1);
    for _ in 0..2 {
        core.handle(&starved, 0).expect("starved run");
    }
    assert_eq!(core.tier(), Tier::MiniconOnly);

    let resp = core.handle(&starved, 0).expect("minicon-tier starved run");
    assert_eq!(resp.tier, Tier::MiniconOnly);
    match &resp.verdict {
        Verdict::Unknown(p) => {
            assert_eq!(
                p.resource.stage,
                stage::MINICON,
                "tripped forming the first MCD"
            );
            assert!(p.disjuncts_proven.is_empty());
            assert_eq!(p.disjuncts_total, 0, "no disjunct was examined");
            assert!(resp.checkpoint.is_none(), "nothing worth resuming from");
        }
        other => panic!("budget 1 finished?! {other:?}"),
    }

    let resp = core.handle(&req, 0).expect("full-grant retry");
    assert_eq!(resp.tier, Tier::MiniconOnly);
    assert!(!resp.resumed);
    assert_eq!(
        resp.verdict,
        Verdict::NotContained,
        "retry matches the one-shot unlimited verdict"
    );
}

/// The one-shot unlimited verdict for a workload, if definite.
fn oracle_verdict(req: &Request, core: &ServeCore) -> Option<Verdict> {
    match relatively_contained_verdict(
        &req.q1,
        &req.ans1,
        &req.q2,
        &req.ans2,
        core.snapshot().views(),
    ) {
        Ok(v @ (Verdict::Contained | Verdict::NotContained)) => Some(v),
        _ => None,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Escalate-and-resume differential on random chain workloads: start
    /// at a random tiny budget, double and resume from each checkpoint;
    /// the first definite verdict must equal the one-shot unlimited one.
    #[test]
    fn escalating_resume_reaches_the_one_shot_verdict(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let q = sym("q");
        let cq1 = random_query(Shape::Chain, 1 + rng.gen_range(0..2), 2, &mut rng);
        let cq2 = random_query(Shape::Chain, 1 + rng.gen_range(0..2), 2, &mut rng);
        let views = random_views(3, 2, &mut rng);
        let cfg = ServeConfig { trip_threshold: u32::MAX, ..ServeConfig::default() };
        let core = ServeCore::new(views, cfg);
        let mut req = Request::new(
            query_program(&cq1), q, query_program(&cq2), q,
        );
        let Some(oracle) = oracle_verdict(&req, &core) else {
            return Ok(()); // degenerate drawing: nothing to compare against
        };

        let mut budget = 1 + rng.gen_range(0..32) as u64;
        let mut rounds = 0usize;
        let final_verdict = loop {
            rounds += 1;
            prop_assert!(rounds <= 64, "escalation failed to converge");
            req.budget = Some(budget);
            let resp = core.handle(&req, 0).expect("escalation run");
            prop_assert_eq!(resp.tier, Tier::Full, "pinned ladder must not move");
            match resp.verdict {
                Verdict::Unknown(_) => {
                    if resp.checkpoint.is_some() {
                        req.checkpoint = resp.checkpoint;
                    }
                    budget = budget.saturating_mul(2);
                }
                v => break v,
            }
        };
        prop_assert_eq!(final_verdict, oracle);
    }
}
