//! Property-based cross-validation: independent implementations and the
//! raw semantics must agree on randomized workloads.
//!
//! * containment-mapping CQ containment ⇔ canonical-database evaluation;
//! * relative containment, expansion route ⇔ plan-comparison route;
//! * decided relative containment ⇒ certain-answer containment on
//!   sampled instances (the semantics, Definition 2.4);
//! * naive ⇔ semi-naive evaluation;
//! * minimization preserves equivalence;
//! * dense-order containment is sound on sampled numeric databases.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use relcont::containment::canonical::freeze;
use relcont::containment::{cq_contained, cq_equivalent, minimize};
use relcont::datalog::eval::{answers, evaluate, EvalOptions, Strategy};
use relcont::datalog::{
    Atom, CompOp, Comparison, ConjunctiveQuery, Database, Program, Symbol, Term,
};
use relcont::mediator::certain::certain_answers;
use relcont::mediator::relative::{relatively_contained, relatively_contained_by_plans};
use relcont::mediator::workloads::{
    query_program, random_instance, random_query, random_views, Shape,
};

fn s(n: &str) -> Symbol {
    Symbol::new(n)
}

/// A random small CQ over binary predicates, allowing repeats/constants.
fn arbitrary_cq(rng: &mut StdRng, max_atoms: usize) -> ConjunctiveQuery {
    let natoms = rng.gen_range(1..=max_atoms);
    let nvars = rng.gen_range(1..=4u32);
    let term = |rng: &mut StdRng| -> Term {
        if rng.gen_bool(0.15) {
            Term::int(rng.gen_range(0..3))
        } else {
            Term::var(format!("V{}", rng.gen_range(0..nvars)))
        }
    };
    let mut subgoals = Vec::new();
    for _ in 0..natoms {
        let p = rng.gen_range(0..2);
        subgoals.push(Atom::new(format!("p{p}"), vec![term(rng), term(rng)]));
    }
    // Head: a variable that occurs in the body (safety).
    let body_vars: Vec<_> = subgoals.iter().flat_map(|a| a.vars()).collect();
    let head_args = if body_vars.is_empty() {
        vec![]
    } else {
        vec![Term::Var(body_vars[rng.gen_range(0..body_vars.len())])]
    };
    ConjunctiveQuery::new(Atom::new("q", head_args), subgoals, Vec::new())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn cq_containment_matches_canonical_database(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let q1 = arbitrary_cq(&mut rng, 3);
        let mut q2 = arbitrary_cq(&mut rng, 3);
        // Same head arity required for containment to be meaningful. An
        // all-constant q2 body gets a constant head instead.
        let q2_vars: Vec<_> = q2.subgoals.iter().flat_map(|a| a.vars()).collect();
        q2.head = Atom::new("q", q1.head.args.iter().map(|_| {
            match q2_vars.first() {
                Some(v) => Term::Var(*v),
                None => Term::int(0),
            }
        }).collect());

        let via_hom = cq_contained(&q1, &q2);
        // Canonical database: q1 ⊆ q2 iff frozen head of q1 ∈ q2(freeze(q1)).
        let frozen = freeze(&q1);
        let prog = Program::new(vec![q2.to_rule()]);
        let rel = answers(&prog, &frozen.database, &s("q"), &EvalOptions::default()).unwrap();
        let via_canon = rel.contains(&frozen.head);
        prop_assert_eq!(via_hom, via_canon, "q1: {} q2: {}", q1, q2);
    }

    #[test]
    fn relative_containment_routes_agree(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let shape = if seed.is_multiple_of(2) { Shape::Chain } else { Shape::Star };
        let q1 = random_query(shape, 1 + (seed as usize) % 2, 2, &mut rng);
        let q2 = random_query(shape, 1 + (seed as usize / 2) % 2, 2, &mut rng);
        let views = random_views(3, 2, &mut rng);
        let a = relatively_contained(
            &query_program(&q1), &s("q"), &query_program(&q2), &s("q"), &views,
        ).unwrap();
        let b = relatively_contained_by_plans(
            &query_program(&q1), &s("q"), &query_program(&q2), &s("q"), &views,
        ).unwrap();
        prop_assert_eq!(a, b, "q1: {} q2: {} views: {:?}", q1, q2, views.names());
    }

    #[test]
    fn relative_containment_is_sound_on_instances(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let q1 = random_query(Shape::Chain, 1 + (seed as usize) % 2, 2, &mut rng);
        let q2 = random_query(Shape::Chain, 1 + (seed as usize / 3) % 2, 2, &mut rng);
        let views = random_views(3, 2, &mut rng);
        let p1 = query_program(&q1);
        let p2 = query_program(&q2);
        let decided = relatively_contained(&p1, &s("q"), &p2, &s("q"), &views).unwrap();
        if decided {
            // Definition 2.4: certain answers must be contained on EVERY
            // instance; check a few random ones.
            for _ in 0..3 {
                let inst = random_instance(&views, 3, 3, &mut rng);
                let opts = EvalOptions::default();
                let a1 = certain_answers(&p1, &s("q"), &views, &inst, &opts).unwrap();
                let a2 = certain_answers(&p2, &s("q"), &views, &inst, &opts).unwrap();
                for t in a1.tuples() {
                    prop_assert!(
                        a2.contains(&t),
                        "decided contained but witness {t:?} escapes\nq1: {}\nq2: {}",
                        q1, q2
                    );
                }
            }
        }
    }

    #[test]
    fn naive_and_seminaive_agree(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        // A random recursive program over a random database.
        let prog = relcont::datalog::parse_program(
            "t(X, Y) :- p0(X, Y). t(X, Z) :- t(X, Y), p1(Y, Z). u(X) :- t(X, X).",
        ).unwrap();
        let mut db = Database::new();
        for p in 0..2 {
            for _ in 0..rng.gen_range(0..8) {
                db.insert(
                    format!("p{p}"),
                    vec![
                        Term::int(rng.gen_range(0..4)),
                        Term::int(rng.gen_range(0..4)),
                    ],
                );
            }
        }
        let naive = evaluate(&prog, &db, &EvalOptions { strategy: Strategy::Naive, ..Default::default() }).unwrap();
        let semi = evaluate(&prog, &db, &EvalOptions { strategy: Strategy::SemiNaive, ..Default::default() }).unwrap();
        prop_assert_eq!(naive.facts(), semi.facts());
    }

    #[test]
    fn minimization_preserves_equivalence(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let q = arbitrary_cq(&mut rng, 4);
        let min = minimize(&q);
        prop_assert!(min.subgoals.len() <= q.subgoals.len());
        prop_assert!(cq_equivalent(&q, &min), "q: {} min: {}", q, min);
        // The core is minimal: removing any further subgoal breaks
        // equivalence or safety.
        for i in 0..min.subgoals.len() {
            let mut smaller = min.clone();
            smaller.subgoals.remove(i);
            let safe = smaller
                .head_vars()
                .iter()
                .all(|v| smaller.subgoals.iter().any(|a| a.vars().contains(v)));
            if safe && !smaller.subgoals.is_empty() {
                prop_assert!(!cq_equivalent(&q, &smaller));
            }
        }
    }

    #[test]
    fn three_plan_constructions_agree(seed in any::<u64>()) {
        use relcont::mediator::enumerate::{enumerated_plan, EnumerationLimits};
        use relcont::mediator::minicon::minicon_rewritings;
        use relcont::mediator::fn_elim::eliminate_function_terms;
        use relcont::mediator::inverse_rules::max_contained_plan;
        use relcont::containment::cq::ucq_equivalent;
        use relcont::datalog::Ucq;

        let mut rng = StdRng::seed_from_u64(seed);
        // Small: enumeration is exponential.
        let q = random_query(Shape::Chain, 1 + (seed as usize) % 2, 2, &mut rng);
        let views = random_views(2, 2, &mut rng);

        let mc = minicon_rewritings(&q, &views);
        let en = enumerated_plan(&q, &views, &EnumerationLimits::default());
        let inv = eliminate_function_terms(&max_contained_plan(&query_program(&q), &views)).unwrap();
        let inv_ucq = match inv.unfold(&s("q")) {
            Ok(mut u) => {
                u.disjuncts.retain(|d| {
                    d.subgoals.iter().all(|a| views.source(a.pred.as_str()).is_some())
                });
                u
            }
            Err(_) => Ucq::empty("q", q.head.arity()),
        };
        prop_assert!(ucq_equivalent(&mc, &inv_ucq), "minicon {} vs inverse {}", mc, inv_ucq);
        if let Some(en) = en {
            prop_assert!(ucq_equivalent(&mc, &en), "minicon {} vs enumerated {}", mc, en);
        }
    }

    #[test]
    fn comparison_containment_sound_on_numeric_databases(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        // Queries over one binary predicate with a semi-interval atom.
        let mk = |rng: &mut StdRng| -> ConjunctiveQuery {
            let c = rng.gen_range(0..4);
            let op = [CompOp::Lt, CompOp::Le, CompOp::Gt, CompOp::Ge][rng.gen_range(0..4)];
            ConjunctiveQuery::new(
                Atom::new("q", vec![Term::var("X")]),
                vec![Atom::new("e", vec![Term::var("X"), Term::var("Y")])],
                vec![Comparison::new(Term::var("Y"), op, Term::int(c))],
            )
        };
        let q1 = mk(&mut rng);
        let q2 = mk(&mut rng);
        let contained = cq_contained(&q1, &q2);
        // Evaluate on random numeric databases.
        for _ in 0..4 {
            let mut db = Database::new();
            for _ in 0..6 {
                db.insert("e", vec![
                    Term::int(rng.gen_range(0..4)),
                    Term::int(rng.gen_range(0..6) - 1),
                ]);
            }
            let a1 = answers(&Program::new(vec![q1.to_rule()]), &db, &s("q"), &EvalOptions::default()).unwrap();
            let a2 = answers(&Program::new(vec![q2.to_rule()]), &db, &s("q"), &EvalOptions::default()).unwrap();
            let sub = a1.tuples().iter().all(|t| a2.contains(t));
            if contained {
                prop_assert!(sub, "decided contained, found counterexample\nq1: {}\nq2: {}", q1, q2);
            }
        }
    }
}
