//! Telemetry v2 integration tests: every answer (and every error) the
//! service hands out carries a trace ID that resolves in the flight
//! recorder, the per-tier latency histograms populate as requests run,
//! the flight ring honours its configured capacity, and supervision
//! events (worker panics) leave resolvable timelines behind.

use std::time::Duration;

use relcont::datalog::{parse_program, Program, Symbol};
use relcont::guard::{FaultKind, FaultPlan};
use relcont::mediator::relative::Verdict;
use relcont::mediator::schema::example1_sources;
use relcont::obs::{Hist, Histograms};
use relcont::serve::{Request, ServeConfig, ServeCore, Service, ServiceError, Tier, TraceId};

fn sym(s: &str) -> Symbol {
    Symbol::new(s)
}

fn q1_prog() -> Program {
    parse_program(
        "q1(CarNo, Review) :- CarDesc(CarNo, Model, C, Y), Review(Model, Review, Rating).",
    )
    .unwrap()
}

fn q2_prog() -> Program {
    parse_program("q2(CarNo, Review) :- CarDesc(CarNo, Model, C, Y), Review(Model, Review, 10).")
        .unwrap()
}

fn contained_request() -> Request {
    Request::new(q1_prog(), sym("q1"), q2_prog(), sym("q2"))
}

/// Every response resolves in the flight recorder: same trace, matching
/// outcome/tier/timings — and distinct requests get distinct traces.
/// The first submission runs the engine; identical resubmissions answer
/// from the verdict cache and say so in their timelines.
#[test]
fn service_responses_resolve_in_the_flight_recorder() {
    let svc = Service::start(example1_sources(), ServeConfig::default());
    let mut traces: Vec<TraceId> = Vec::new();
    for i in 0..4 {
        let resp = svc.submit(contained_request()).unwrap().wait().unwrap();
        assert_eq!(resp.verdict, Verdict::Contained);
        let t = svc
            .core()
            .flight()
            .find(resp.trace)
            .expect("response trace resolves");
        assert_eq!(t.tier, Some(Tier::Full));
        assert_eq!(t.queue_wait_ns, resp.queue_wait_ns);
        if i == 0 {
            assert_eq!(t.outcome, "contained");
            assert!(t.execute_ns > 0, "execution took measurable time");
            assert_eq!(t.total_ns, t.queue_wait_ns + t.execute_ns);
            assert!(
                t.stages.iter().any(|s| s.calls > 0),
                "per-stage breakdown recorded: {:?}",
                t.stages
            );
        } else {
            assert_eq!(t.outcome, "verdict_cache_hit");
            assert_eq!(t.execute_ns, 0, "cache hits run nothing");
        }
        traces.push(resp.trace);
    }
    assert_eq!(svc.core().stats().verdict_cache_hits, 3);
    traces.sort_by_key(|t| t.0);
    traces.dedup();
    assert_eq!(traces.len(), 4, "traces are unique");
    svc.shutdown();
}

/// Shed submissions are errors, but they still get a trace — and the
/// trace resolves to a `shed` timeline naming the queue length.
#[test]
fn shed_errors_carry_resolvable_traces() {
    let cfg = ServeConfig {
        workers: 1,
        queue_capacity: 1,
        start_paused: true,
        // The submits are identical; without this the second would
        // coalesce onto the first instead of shedding.
        coalesce: false,
        ..ServeConfig::default()
    };
    let svc = Service::start(example1_sources(), cfg);
    let ticket = svc.submit(contained_request()).unwrap();
    let shed = match svc.submit(contained_request()) {
        Err(e @ ServiceError::ShedUnderLoad { .. }) => e,
        other => panic!("expected shed, got {other:?}"),
    };
    let t = svc
        .core()
        .flight()
        .find(shed.trace())
        .expect("shed trace resolves");
    assert_eq!(t.outcome, "shed");
    assert!(t.trip.as_deref().unwrap_or("").contains("queue full"));
    assert_ne!(shed.trace(), ticket.trace(), "shed and admitted differ");
    svc.unpause();
    ticket.wait().unwrap();
    svc.shutdown();
}

/// Direct core runs populate the per-tier latency histograms, the
/// response surfaces its queue wait, and the stats digest carries
/// non-empty quantile summaries.
#[test]
fn latency_histograms_populate_per_tier() {
    let core = ServeCore::new(example1_sources(), ServeConfig::default());
    let n = 3;
    for i in 0..n {
        // Distinct answer-predicate names keep the fingerprints apart,
        // so every run executes instead of hitting the verdict cache.
        let q1 = format!(
            "p{i}(CarNo, Review) :- CarDesc(CarNo, Model, C, Y), Review(Model, Review, Rating)."
        );
        let req = Request::new(
            parse_program(&q1).unwrap(),
            sym(&format!("p{i}")),
            q2_prog(),
            sym("q2"),
        );
        let resp = core.handle(&req, 0).unwrap();
        assert_eq!(resp.verdict, Verdict::Contained);
        assert_eq!(resp.queue_wait_ns, 0, "direct handle never queues");
    }
    let hists: &Histograms = core.histograms();
    for h in [
        Hist::ServeQueueWaitFullNs,
        Hist::ServeExecuteFullNs,
        Hist::ServeE2eFullNs,
    ] {
        assert_eq!(hists.get(h).count(), n, "{h} sample count");
    }
    assert!(hists.get(Hist::ServeExecuteFullNs).sum() > 0);
    assert!(
        hists.get(Hist::ServeE2eFullNs).sum() >= hists.get(Hist::ServeExecuteFullNs).sum(),
        "end-to-end dominates execute"
    );
    // Degraded tiers have their own slots, untouched so far.
    assert!(hists.get(Hist::ServeExecuteMiniconNs).is_empty());

    let stats = core.stats();
    assert_eq!(stats.execute.count, n);
    assert_eq!(stats.e2e.count, n);
    assert!(stats.e2e.p50_ns >= stats.execute.p50_ns / 2, "sane medians");
    let digest = stats.to_string();
    assert!(digest.contains("queue-wait:"), "{digest}");
    assert!(digest.contains("end-to-end:"), "{digest}");

    // The same bank drives the Prometheus exposition.
    let text = qc_obs::prometheus_text(core.counters(), hists);
    assert!(text.contains("# TYPE relcont_serve_execute_full_ns histogram"));
    assert!(text.contains("relcont_serve_execute_full_ns_count 3"));
    assert!(text.contains("_bucket{le=\"+Inf\"} 3"));
}

/// The flight ring never outgrows its configured capacity; the newest
/// timelines survive, the oldest are evicted.
#[test]
fn flight_ring_is_bounded_by_flight_capacity() {
    let cfg = ServeConfig {
        flight_capacity: 4,
        ..ServeConfig::default()
    };
    let core = ServeCore::new(example1_sources(), cfg);
    let mut traces = Vec::new();
    for _ in 0..10 {
        traces.push(core.handle(&contained_request(), 0).unwrap().trace);
    }
    assert_eq!(core.flight().len(), 4);
    assert_eq!(core.flight().capacity(), 4);
    for old in &traces[..6] {
        assert!(core.flight().find(*old).is_none(), "{old} evicted");
    }
    for recent in &traces[6..] {
        assert!(core.flight().find(*recent).is_some(), "{recent} retained");
    }
}

/// A twice-panicking request is answered with `WorkerLost`; its trace
/// resolves to a terminal `worker_lost` timeline, preceded by a
/// `panic_retry` supervision event on the same trace.
#[test]
fn worker_panics_leave_supervision_timelines() {
    let cfg = ServeConfig {
        workers: 1,
        ..ServeConfig::default()
    };
    let svc = Service::start(example1_sources(), cfg);
    let mut req = contained_request();
    req.fault = Some(FaultPlan {
        stage: relcont::guard::stage::HOM_SEARCH,
        at_tick: 1,
        kind: FaultKind::Panic,
    });
    let err = match svc.submit(req).unwrap().wait() {
        Err(e @ ServiceError::WorkerLost { .. }) => e,
        other => panic!("expected WorkerLost, got {other:?}"),
    };
    let timelines = svc.core().flight().snapshot();
    let terminal = svc
        .core()
        .flight()
        .find(err.trace())
        .expect("worker_lost trace resolves");
    assert_eq!(terminal.outcome, "worker_lost");
    assert!(
        timelines
            .iter()
            .any(|t| t.trace == err.trace() && t.outcome == "panic_retry"),
        "supervision retry recorded: {timelines:?}"
    );
    svc.shutdown();
}

/// Queue timeouts are answered without running — and still traced.
#[test]
fn queue_timeouts_are_traced() {
    let cfg = ServeConfig {
        workers: 1,
        start_paused: true,
        queue_timeout: Some(Duration::from_millis(1)),
        ..ServeConfig::default()
    };
    let svc = Service::start(example1_sources(), cfg);
    let ticket = svc.submit(contained_request()).unwrap();
    std::thread::sleep(Duration::from_millis(10));
    svc.unpause();
    let err = match ticket.wait() {
        Err(e @ ServiceError::Timeout { .. }) => e,
        other => panic!("expected queue timeout, got {other:?}"),
    };
    let t = svc
        .core()
        .flight()
        .find(err.trace())
        .expect("timeout trace resolves");
    assert_eq!(t.outcome, "queue_timeout");
    assert!(t.queue_wait_ns > 0, "the wait itself is recorded");
    svc.shutdown();
}
