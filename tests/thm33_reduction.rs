//! Experiment E4: Theorem 3.3 — the Π₂ᵖ-hardness reduction, validated
//! against a brute-force ∀∃-3CNF solver at a larger scale than the unit
//! tests.

use rand::rngs::StdRng;
use rand::SeedableRng;
use relcont::mediator::reductions::{random_cnf3, thm33_reduction, Cnf3, CnfVar, Lit};
use relcont::mediator::relative::{relatively_contained, relatively_contained_by_plans};

fn decide(f: &Cnf3) -> bool {
    let inst = thm33_reduction(f);
    relatively_contained(
        &inst.contained,
        &inst.contained_ans,
        &inst.container,
        &inst.container_ans,
        &inst.views,
    )
    .unwrap()
}

#[test]
fn paper_example_formula() {
    let l = |var, positive| Lit { var, positive };
    let f = Cnf3 {
        num_x: 2,
        num_y: 2,
        clauses: vec![
            [
                l(CnfVar::X(0), true),
                l(CnfVar::X(1), true),
                l(CnfVar::Y(0), true),
            ],
            [
                l(CnfVar::X(0), false),
                l(CnfVar::X(1), false),
                l(CnfVar::Y(1), true),
            ],
        ],
    };
    assert!(f.is_forall_exists_satisfiable());
    assert!(decide(&f));
}

#[test]
fn tautological_clause_set() {
    // A clause plus its x-mirror: always ∃-satisfiable for every y.
    let l = |var, positive| Lit { var, positive };
    let f = Cnf3 {
        num_x: 3,
        num_y: 1,
        clauses: vec![
            [
                l(CnfVar::X(0), true),
                l(CnfVar::X(1), true),
                l(CnfVar::X(2), true),
            ],
            [
                l(CnfVar::X(0), false),
                l(CnfVar::X(1), false),
                l(CnfVar::Y(0), true),
            ],
        ],
    };
    assert_eq!(decide(&f), f.is_forall_exists_satisfiable());
    assert!(decide(&f));
}

#[test]
fn y_only_clause_can_fail() {
    // (y0 ∨ y1 ∨ x0): with y0 = y1 = false, needs x0 = true. And
    // (¬x0 ∨ y0 ∨ y1): needs x0 = false then. ∀∃-unsat at y0=y1=0.
    let l = |var, positive| Lit { var, positive };
    let f = Cnf3 {
        num_x: 1,
        num_y: 2,
        clauses: vec![
            [
                l(CnfVar::Y(0), true),
                l(CnfVar::Y(1), true),
                l(CnfVar::X(0), true),
            ],
            [
                l(CnfVar::X(0), false),
                l(CnfVar::Y(0), true),
                l(CnfVar::Y(1), true),
            ],
        ],
    };
    assert!(!f.is_forall_exists_satisfiable());
    assert!(!decide(&f));
}

#[test]
fn random_sweep_agrees_with_brute_force() {
    // Seed chosen so the sweep hits ≥3 formulas of each outcome under the
    // vendored deterministic RNG (see third_party/README.md).
    let mut rng = StdRng::seed_from_u64(31);
    let mut sat = 0;
    let mut unsat = 0;
    for trial in 0..30 {
        let f = random_cnf3(2, 2, 2 + trial % 4, &mut rng);
        let expected = f.is_forall_exists_satisfiable();
        if expected {
            sat += 1;
        } else {
            unsat += 1;
        }
        assert_eq!(decide(&f), expected, "trial {trial}: {f:?}");
    }
    // The sweep must exercise both outcomes to be meaningful.
    assert!(sat >= 3, "sat formulas: {sat}");
    assert!(unsat >= 3, "unsat formulas: {unsat}");
}

#[test]
fn plan_comparison_route_agrees_on_reduction_instances() {
    let mut rng = StdRng::seed_from_u64(777);
    for trial in 0..6 {
        let f = random_cnf3(2, 1, 1 + trial % 3, &mut rng);
        let inst = thm33_reduction(&f);
        let a = relatively_contained(
            &inst.contained,
            &inst.contained_ans,
            &inst.container,
            &inst.container_ans,
            &inst.views,
        )
        .unwrap();
        let b = relatively_contained_by_plans(
            &inst.contained,
            &inst.contained_ans,
            &inst.container,
            &inst.container_ans,
            &inst.views,
        )
        .unwrap();
        assert_eq!(a, b, "trial {trial}");
    }
}

#[test]
fn containment_direction_is_not_symmetric() {
    // Q1' ⊑ Q2' (the reverse direction) asks whether every satisfying-row
    // database matches the clause structure — generally false.
    let mut rng = StdRng::seed_from_u64(12);
    let mut found_asym = false;
    for _ in 0..10 {
        let f = random_cnf3(2, 1, 2, &mut rng);
        if !f.is_forall_exists_satisfiable() {
            continue;
        }
        let inst = thm33_reduction(&f);
        let fwd = decide(&f);
        let rev = relatively_contained(
            &inst.container,
            &inst.container_ans,
            &inst.contained,
            &inst.contained_ans,
            &inst.views,
        )
        .unwrap();
        if fwd && !rev {
            found_asym = true;
            break;
        }
    }
    assert!(found_asym, "expected an asymmetric instance");
}
