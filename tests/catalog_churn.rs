//! Live catalog churn, end to end: epoch-versioned catalogs on the
//! public serve API (DESIGN.md §16).
//!
//! Pins the two properties the chaos suite samples statistically:
//!
//! - Request fingerprints are a function of *resolved strings*, never of
//!   interned `u32` ids — two processes that intern the same names in
//!   opposite orders must agree on every fingerprint, or journals and
//!   client checkpoints would silently stop matching across restarts.
//! - A one-view delta re-proves strictly fewer plan disjuncts than a
//!   from-scratch rebuild (the paper's E1/E4 workloads ride untouched
//!   through the epoch bump on the verdict cache, while the request that
//!   depends on the replaced view recomputes).

use std::process::Command;
use std::sync::Arc;

use relcont::datalog::{parse_program, Symbol};
use relcont::mediator::relative::Verdict;
use relcont::mediator::schema::{LavSetting, SourceDescription};
use relcont::obs::Counter;
use relcont::serve::{CatalogDelta, CatalogOp, CounterSink, Request, ServeConfig, ServeCore};

/// Example 1's sources plus one auxiliary view over predicates the
/// paper's queries never mention.
fn churned_catalog() -> LavSetting {
    let mut views = LavSetting::parse(&[
        "RedCars(CarNo, Model, Year) :- CarDesc(CarNo, Model, red, Year).",
        "AntiqueCars(CarNo, Model, Year) :- CarDesc(CarNo, Model, Color, Year), Year < 1970.",
        "CarAndDriver(Model, Review) :- Review(Model, Review, 10).",
    ])
    .unwrap();
    views
        .sources
        .push(SourceDescription::parse("W(A, B) :- wsrc(A, B).").unwrap());
    views
}

fn request(q1: &str, a1: &str, q2: &str, a2: &str) -> Request {
    Request::new(
        parse_program(q1).unwrap(),
        Symbol::new(a1),
        parse_program(q2).unwrap(),
        Symbol::new(a2),
    )
}

/// E1: the paper's running containment q1 ⊑_V q2.
fn e1_request() -> Request {
    request(
        "q1(CarNo, Review) :- CarDesc(CarNo, Model, C, Y), Review(Model, Review, Rating).",
        "q1",
        "q2(CarNo, Review) :- CarDesc(CarNo, Model, C, Y), Review(Model, Review, 10).",
        "q2",
    )
}

/// E4 flavor: the semi-interval query (Year < 1970 routes through
/// `AntiqueCars` and the full tier's comparison reasoning).
fn e4_request() -> Request {
    request(
        "q3(CarNo, Review) :- CarDesc(CarNo, Model, C, Y), Review(Model, Review, 10), Y < 1970.",
        "q3",
        "q2(CarNo, Review) :- CarDesc(CarNo, Model, C, Y), Review(Model, Review, 10).",
        "q2",
    )
}

/// The only workload that depends on the churned view `W`.
fn w_request() -> Request {
    request(
        "qw1(A, B) :- wsrc(A, B).",
        "qw1",
        "qw2(A, B) :- wsrc(A, B).",
        "qw2",
    )
}

/// Satellite regression: fingerprints across interner orders.
///
/// The symbol interner is process-global, so a single process cannot
/// intern the same names in two orders. Instead the test re-executes
/// itself twice as child processes, each pre-interning the workload's
/// names in a different order (forward/reversed) before computing the
/// fingerprint, and asserts both children print the same value. A
/// fingerprint that hashed interned `u32` ids instead of resolved
/// strings would differ between the two children.
#[test]
fn fingerprints_are_independent_of_interner_order() {
    const NAMES: &[&str] = &[
        "CarDesc",
        "Review",
        "RedCars",
        "AntiqueCars",
        "CarAndDriver",
        "W",
        "wsrc",
        "q1",
        "q2",
        "q3",
        "qw1",
        "qw2",
        "CarNo",
        "Model",
        "Year",
        "Color",
        "Rating",
        "red",
    ];
    if let Ok(order) = std::env::var("CHURN_FP_PREWARM") {
        // Child mode: warp the interner's id assignment, then fingerprint.
        match order.as_str() {
            "forward" => NAMES.iter().for_each(|n| {
                Symbol::new(n);
            }),
            "reverse" => NAMES.iter().rev().for_each(|n| {
                Symbol::new(n);
            }),
            other => panic!("unknown prewarm order {other:?}"),
        }
        let core = ServeCore::new(churned_catalog(), ServeConfig::default());
        let snap = core.snapshot();
        let lines: Vec<String> = [
            ("e1", e1_request()),
            ("e4", e4_request()),
            ("w", w_request()),
        ]
        .iter()
        .map(|(tag, req)| format!("fingerprint:{tag}={:032x}", req.fingerprint(&snap)))
        .collect();
        // Report through a file: libtest shares the child's stdout and
        // can interleave its own chatter mid-line.
        std::fs::write(std::env::var("CHURN_FP_OUT").unwrap(), lines.join("\n")).unwrap();
        return;
    }

    let exe = std::env::current_exe().unwrap();
    let run = |order: &str| -> Vec<String> {
        let report = std::env::temp_dir().join(format!(
            "relcont-churn-fp-{}-{order}.txt",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&report);
        let out = Command::new(&exe)
            .args([
                "fingerprints_are_independent_of_interner_order",
                "--exact",
                "--nocapture",
            ])
            .env("CHURN_FP_PREWARM", order)
            .env("CHURN_FP_OUT", &report)
            .output()
            .expect("child test process runs");
        assert!(
            out.status.success(),
            "child ({order}) failed:\n{}",
            String::from_utf8_lossy(&out.stderr)
        );
        let text = std::fs::read_to_string(&report).expect("child wrote its report");
        let _ = std::fs::remove_file(&report);
        let mut fps: Vec<String> = text.lines().map(str::to_string).collect();
        fps.sort();
        fps
    };
    let forward = run("forward");
    let reverse = run("reverse");
    assert_eq!(forward.len(), 3, "child printed all three fingerprints");
    assert_eq!(
        forward, reverse,
        "fingerprints depend on interner order: they would not survive \
         a restart or match across processes"
    );
}

/// The acceptance differential: after a delta replacing only `W`, the
/// E1/E4 verdicts survive from the verdict cache (zero fresh disjunct
/// proofs), the `W`-dependent request recomputes, and the total fresh
/// proof work is strictly below a from-scratch rebuild answering the
/// same three workloads.
#[test]
fn one_view_delta_reproves_strictly_fewer_disjuncts_than_rebuild() {
    let cfg = ServeConfig {
        trip_threshold: u32::MAX,
        ..ServeConfig::default()
    };
    let core = ServeCore::new(churned_catalog(), cfg);
    let _sink = qc_obs::install(Arc::new(CounterSink(Arc::clone(core.counters()))));

    let reqs = [e1_request(), e4_request(), w_request()];
    let mut verdicts = Vec::new();
    for req in &reqs {
        let resp = core.handle(req, 0).unwrap();
        assert_eq!(resp.epoch, 0);
        assert!(
            !matches!(resp.verdict, Verdict::Unknown(_)),
            "warmup must be definite: {:?}",
            resp.verdict
        );
        verdicts.push(resp.verdict);
    }
    let warmed = core.counters().get(Counter::PlanDisjunctsProved);
    assert!(warmed > 0, "the warmup proved disjuncts");

    // Replace only W (with an equivalent definition): touched preds are
    // {W, wsrc}, so E1/E4 keep their fingerprints and cached verdicts.
    let report = core
        .apply_delta(&CatalogDelta::one(CatalogOp::Replace(
            SourceDescription::parse("W(A, B) :- wsrc(A, B).").unwrap(),
        )))
        .unwrap();
    assert_eq!(report.views_recompiled, 1);
    assert_eq!(report.views_reused, 3);
    assert_eq!(core.epoch(), 1);

    for (req, verdict) in reqs.iter().zip(&verdicts) {
        let resp = core.handle(req, 0).unwrap();
        assert_eq!(resp.epoch, 1, "post-delta answers carry the new epoch");
        assert_eq!(
            &resp.verdict, verdict,
            "an equivalent replace cannot change any verdict"
        );
    }
    let delta_cost = core.counters().get(Counter::PlanDisjunctsProved) - warmed;
    assert!(
        core.stats().verdict_cache_hits >= 2,
        "E1 and E4 must ride the verdict cache through the epoch bump"
    );
    assert!(
        delta_cost > 0,
        "the W-dependent request must actually re-prove its disjuncts"
    );

    // From-scratch differential: a cold core at the same catalog answers
    // the same three workloads and pays the full proof bill.
    let cfg = ServeConfig {
        trip_threshold: u32::MAX,
        ..ServeConfig::default()
    };
    let rebuild = ServeCore::new(churned_catalog(), cfg);
    let _sink = qc_obs::install(Arc::new(CounterSink(Arc::clone(rebuild.counters()))));
    for req in &reqs {
        rebuild.handle(req, 0).unwrap();
    }
    let rebuild_cost = rebuild.counters().get(Counter::PlanDisjunctsProved);
    assert!(rebuild_cost > 0);
    assert!(
        delta_cost < rebuild_cost,
        "one-view delta must re-prove strictly fewer disjuncts than a \
         rebuild: {delta_cost} vs {rebuild_cost}"
    );
}
