//! Guard integration tests: every budget-exhaustion path reports
//! `ResourceError { stage, .. }` provenance, anytime verdicts degrade to
//! `Unknown { partial }` soundly, and an unlimited guard changes nothing.

use std::sync::Arc;

use relcont::containment::datalog_ucq::{
    datalog_contained_in_ucq, DatalogUcqError, FixpointBudget,
};
use relcont::containment::engine::{self, EngineOptions};
use relcont::containment::witness::{find_counterexample_expansion, WitnessBudget};
use relcont::containment::{cq_contained, cq_contained_memo};
use relcont::datalog::eval::{answers, EvalError, EvalOptions};
use relcont::datalog::{parse_program, parse_query, Database, Symbol, Ucq};
use relcont::guard::{self, FaultKind, FaultPlan, Guard, ResourceKind};
use relcont::mediator::enumerate::{enumerated_plan, EnumerationLimits};
use relcont::mediator::fn_elim::{eliminate_function_terms, FnElimError};
use relcont::mediator::minicon::minicon_rewritings;
use relcont::mediator::relative::{relatively_contained, relatively_contained_verdict, Verdict};
use relcont::mediator::schema::{example1_sources, LavSetting};

fn sym(s: &str) -> Symbol {
    Symbol::new(s)
}

fn q1_prog() -> relcont::datalog::Program {
    parse_program(
        "q1(CarNo, Review) :- CarDesc(CarNo, Model, C, Y), Review(Model, Review, Rating).",
    )
    .unwrap()
}

fn q2_prog() -> relcont::datalog::Program {
    parse_program("q2(CarNo, Review) :- CarDesc(CarNo, Model, C, Y), Review(Model, Review, 10).")
        .unwrap()
}

fn q3_prog() -> relcont::datalog::Program {
    parse_program(
        "q3(CarNo, Review) :- CarDesc(CarNo, Model, C, Y), Review(Model, Review, 10), Y < 1970.",
    )
    .unwrap()
}

/// Evaluation: a budget measured in rule firings trips with `stage: eval`.
#[test]
fn eval_budget_provenance() {
    let p = parse_program("p(X, Z) :- e(X, Y), e(Y, Z).").unwrap();
    let db = Database::parse("e(1, 2). e(2, 3). e(3, 4).").unwrap();
    let g = Guard::unlimited().with_budget(1);
    let err =
        guard::with_guard(&g, || answers(&p, &db, &sym("p"), &EvalOptions::default())).unwrap_err();
    match err {
        EvalError::Resource(e) => {
            assert_eq!(e.stage, guard::stage::EVAL);
            assert_eq!(e.kind, ResourceKind::Budget);
            assert_eq!(e.limit, 1);
            assert!(e.consumed > e.limit);
        }
        other => panic!("expected resource error, got {other:?}"),
    }
    // Unlimited: identical to unguarded.
    let unguarded = answers(&p, &db, &sym("p"), &EvalOptions::default()).unwrap();
    let guarded = guard::with_guard(&Guard::unlimited(), || {
        answers(&p, &db, &sym("p"), &EvalOptions::default())
    })
    .unwrap();
    assert_eq!(unguarded.len(), guarded.len());
}

/// Homomorphism search: trips unwind to the `guarded` boundary with
/// `stage: hom_search`.
#[test]
fn hom_search_budget_provenance() {
    let qa = parse_query("q(X) :- r(X, Y), r(Y, Z).").unwrap();
    let qb = parse_query("q(A) :- r(A, B).").unwrap();
    let g = Guard::unlimited().with_budget(0);
    let e = guard::with_guard(&g, || guard::guarded(|| cq_contained(&qa, &qb))).unwrap_err();
    assert_eq!(e.stage, guard::stage::HOM_SEARCH);
    assert_eq!(e.kind, ResourceKind::Budget);
    // With room to finish, the guarded verdict equals the unguarded one.
    let big = Guard::unlimited().with_budget(1_000_000);
    let v = guard::with_guard(&big, || guard::guarded(|| cq_contained(&qa, &qb))).unwrap();
    assert_eq!(v, cq_contained(&qa, &qb));
}

/// The containment memo ticks once per question asked through it.
#[test]
fn memo_budget_provenance() {
    let qa = parse_query("q(X) :- r(X, Y).").unwrap();
    let qb = parse_query("q(A) :- r(A, B).").unwrap();
    let g = Guard::unlimited().with_budget(0);
    let e = guard::with_guard(&g, || {
        engine::with_options(EngineOptions::sequential(), || {
            guard::guarded(|| cq_contained_memo(&qa, &qb))
        })
    })
    .unwrap_err();
    assert_eq!(e.stage, guard::stage::MEMO);
    assert_eq!(e.kind, ResourceKind::Budget);
}

/// The type fixpoint propagates guard errors through its own plumbing
/// with `stage: fixpoint`.
#[test]
fn fixpoint_guard_provenance() {
    let tc = parse_program("t(X, Y) :- e(X, Y). t(X, Z) :- t(X, Y), e(Y, Z).").unwrap();
    let loose = Ucq::single(parse_query("u(X, Y) :- e(X, A), e(B, Y).").unwrap());
    let g = Guard::unlimited().with_fault(FaultPlan {
        stage: guard::stage::FIXPOINT,
        at_tick: 1,
        kind: FaultKind::Budget,
    });
    let err = guard::with_guard(&g, || {
        guard::guarded(|| {
            datalog_contained_in_ucq(&tc, &sym("t"), &loose, &FixpointBudget::default())
        })
    })
    .unwrap()
    .unwrap_err();
    match err {
        DatalogUcqError::Resource(e) => {
            assert_eq!(e.stage, guard::stage::FIXPOINT);
            assert_eq!(e.kind, ResourceKind::Budget);
        }
        other => panic!("expected resource error, got {other:?}"),
    }
}

/// Theorem 3.1 enumeration trips with `stage: enumeration`.
#[test]
fn enumeration_guard_provenance() {
    let q = parse_query("q(X) :- p(X, Y).").unwrap();
    let views = LavSetting::parse(&["v(A, B) :- p(A, B)."]).unwrap();
    let g = Guard::unlimited().with_fault(FaultPlan {
        stage: guard::stage::ENUMERATION,
        at_tick: 1,
        kind: FaultKind::Budget,
    });
    let e = guard::with_guard(&g, || {
        guard::guarded(|| enumerated_plan(&q, &views, &EnumerationLimits::default()))
    })
    .unwrap_err();
    assert_eq!(e.stage, guard::stage::ENUMERATION);
    assert_eq!(e.kind, ResourceKind::Budget);
}

/// Function-term elimination reports `stage: fn_elim` through its error
/// type.
#[test]
fn fn_elim_guard_provenance() {
    let plan = parse_program("p(X, f(X)) :- v(X). q(A) :- p(A, B).").unwrap();
    let g = Guard::unlimited().with_fault(FaultPlan {
        stage: guard::stage::FN_ELIM,
        at_tick: 1,
        kind: FaultKind::Budget,
    });
    let err = guard::with_guard(&g, || eliminate_function_terms(&plan)).unwrap_err();
    match err {
        FnElimError::Resource(e) => {
            assert_eq!(e.stage, guard::stage::FN_ELIM);
            assert_eq!(e.kind, ResourceKind::Budget);
        }
        other => panic!("expected resource error, got {other:?}"),
    }
}

/// MiniCon trips with `stage: minicon`.
#[test]
fn minicon_guard_provenance() {
    let q = parse_query("q(X, Z) :- p(X, Y), r(Y, Z).").unwrap();
    let views = LavSetting::parse(&["V(A, C) :- p(A, B), r(B, C)."]).unwrap();
    let g = Guard::unlimited().with_fault(FaultPlan {
        stage: guard::stage::MINICON,
        at_tick: 1,
        kind: FaultKind::Budget,
    });
    let e =
        guard::with_guard(&g, || guard::guarded(|| minicon_rewritings(&q, &views))).unwrap_err();
    assert_eq!(e.stage, guard::stage::MINICON);
    assert_eq!(e.kind, ResourceKind::Budget);
}

/// The counterexample-expansion search trips with `stage: witness`.
#[test]
fn witness_guard_provenance() {
    let p = parse_program("t(X, Y) :- e(X, Y). t(X, Z) :- t(X, Y), e(Y, Z).").unwrap();
    let q = Ucq::single(parse_query("t(A, B) :- e(A, B).").unwrap());
    let g = Guard::unlimited().with_fault(FaultPlan {
        stage: guard::stage::WITNESS,
        at_tick: 1,
        kind: FaultKind::Budget,
    });
    let e = guard::with_guard(&g, || {
        guard::guarded(|| {
            find_counterexample_expansion(&p, &sym("t"), &q, &WitnessBudget::default())
        })
    })
    .unwrap_err();
    assert_eq!(e.stage, guard::stage::WITNESS);
    assert_eq!(e.kind, ResourceKind::Budget);
}

/// The anytime verdict agrees with the boolean decision when no limit is
/// in play (with and without an unlimited guard installed).
#[test]
fn verdict_agrees_with_decision_when_unlimited() {
    let views = example1_sources();
    let cases = [
        (q1_prog(), "q1", q2_prog(), "q2"),
        (q2_prog(), "q2", q1_prog(), "q1"),
        (q1_prog(), "q1", q3_prog(), "q3"),
        (q3_prog(), "q3", q1_prog(), "q1"),
    ];
    for (a, an, b, bn) in cases {
        let expect = relatively_contained(&a, &sym(an), &b, &sym(bn), &views).unwrap();
        let bare = relatively_contained_verdict(&a, &sym(an), &b, &sym(bn), &views).unwrap();
        let under = guard::with_guard(&Guard::unlimited(), || {
            relatively_contained_verdict(&a, &sym(an), &b, &sym(bn), &views)
        })
        .unwrap();
        let want = if expect {
            Verdict::Contained
        } else {
            Verdict::NotContained
        };
        assert_eq!(bare, want, "{an} vs {bn}");
        assert_eq!(under, want, "{an} vs {bn} (unlimited guard)");
    }
}

/// Sweeping the budget upward walks the verdict from `Unknown` (nothing
/// proven) through partial progress to the definite answer, and every
/// partial result is a sound under-approximation.
#[test]
fn verdict_budget_sweep_is_anytime_and_sound() {
    let views = example1_sources();
    let (a, b) = (q1_prog(), q2_prog());
    // Oracle: contained, via a 2-disjunct maximally-contained plan.
    assert!(relatively_contained(&a, &sym("q1"), &b, &sym("q2"), &views).unwrap());

    let mut saw_unknown = false;
    let mut saw_partial_progress = false;
    let mut reached_contained = false;
    let mut best_partial = 0usize;
    for budget in 0..5_000 {
        let g = Guard::unlimited().with_budget(budget);
        let v = guard::with_guard(&g, || {
            relatively_contained_verdict(&a, &sym("q1"), &b, &sym("q2"), &views)
        })
        .unwrap();
        match v {
            Verdict::Contained => {
                reached_contained = true;
                break;
            }
            Verdict::NotContained => panic!("sound procedure cannot refute a true containment"),
            Verdict::Unknown(p) => {
                saw_unknown = true;
                assert_eq!(p.resource.kind, ResourceKind::Budget);
                assert!(
                    p.disjuncts_contained() >= best_partial,
                    "more budget cannot prove less: {} < {best_partial}",
                    p.disjuncts_contained()
                );
                best_partial = p.disjuncts_contained();
                assert!(
                    p.disjuncts_proven.windows(2).all(|w| w[0] < w[1]),
                    "proven indices must be strictly ascending: {:?}",
                    p.disjuncts_proven
                );
                assert!(p.disjuncts_proven.iter().all(|&i| i < p.disjuncts_total));
                if p.disjuncts_contained() > 0 {
                    saw_partial_progress = true;
                    assert!(p.disjuncts_total >= p.disjuncts_contained());
                    let plan = p
                        .partial_plan
                        .as_ref()
                        .expect("proven disjuncts form a plan");
                    assert_eq!(plan.disjuncts.len(), p.disjuncts_contained());
                }
            }
        }
    }
    assert!(saw_unknown, "small budgets must yield Unknown");
    assert!(
        saw_partial_progress,
        "some budget must land between the disjunct checks"
    );
    assert!(reached_contained, "a large budget must finish the proof");
}

/// Cancellation surfaces as `Unknown` with `ResourceKind::Cancelled`.
#[test]
fn cancellation_yields_unknown() {
    let views = example1_sources();
    let g = Guard::unlimited();
    g.cancel_token().cancel();
    let v = guard::with_guard(&g, || {
        relatively_contained_verdict(&q1_prog(), &sym("q1"), &q2_prog(), &sym("q2"), &views)
    })
    .unwrap();
    match v {
        Verdict::Unknown(p) => assert_eq!(p.resource.kind, ResourceKind::Cancelled),
        other => panic!("expected Unknown, got {other:?}"),
    }
}

/// A guarded run with no limits reproduces the unguarded engine's
/// counters bit-for-bit (zero overhead when idle).
#[test]
fn unlimited_guard_reproduces_counters() {
    let views = example1_sources();
    let run = |guarded: bool| {
        relcont::containment::memo::clear();
        let rec = Arc::new(qc_obs::PipelineRecorder::new());
        engine::with_options(EngineOptions::sequential(), || {
            let _g = qc_obs::install(rec.clone());
            let body = || {
                assert!(relatively_contained(
                    &q1_prog(),
                    &sym("q1"),
                    &q2_prog(),
                    &sym("q2"),
                    &views
                )
                .unwrap());
            };
            if guarded {
                guard::with_guard(&Guard::unlimited(), body);
            } else {
                body();
            }
        });
        rec.counters().snapshot()
    };
    assert_eq!(run(false), run(true));
}
