//! Experiment E8: the paper's Example 5 — complete (closed-world) sources
//! change relative containment.

use std::collections::BTreeSet;

use relcont::datalog::eval::EvalOptions;
use relcont::datalog::{parse_program, Database, Symbol, Term, Tuple};
use relcont::mediator::certain::{BruteForceOracle, OracleAnswer, World};
use relcont::mediator::relative::relatively_contained;
use relcont::mediator::schema::LavSetting;

fn views() -> LavSetting {
    LavSetting::parse(&[
        "v1(X) :- p(X, Y).",
        "v2(Y) :- p(X, Y).",
        "v3(X, Y) :- p(X, Y), r(X, Y).",
    ])
    .unwrap()
}

#[test]
fn open_world_q1_contained_in_q2() {
    // "Under the assumption of incomplete sources, Q1 ⊑_V Q2. In
    //  particular, views v1 and v2 don't provide any certain answers to
    //  q1."
    let v = views();
    let q1 = parse_program("q1(X, Y) :- p(X, Y).").unwrap();
    let q2 = parse_program("q2(X, Y) :- r(X, Y).").unwrap();
    assert!(relatively_contained(&q1, &Symbol::new("q1"), &q2, &Symbol::new("q2"), &v).unwrap());
    // Oracle confirmation on the instance I = {v1(a), v2(b)}.
    let db = Database::parse("v1(a). v2(b).").unwrap();
    let oracle = BruteForceOracle::with_symbols(&["a", "b"], World::Open);
    let got = oracle
        .certain(&q1, &Symbol::new("q1"), &v, &db, &EvalOptions::default())
        .unwrap();
    assert_eq!(got, OracleAnswer::Certain(BTreeSet::new()));
}

#[test]
fn closed_world_breaks_the_containment() {
    // "under the assumption of complete sources, consider the view
    //  instance I = {v1(a), v2(b)}. Since v1 and v2 are complete, it must
    //  be the case that p(a, b) is true, so (a, b) is a certain answer of
    //  Q1. However, Q2 has no certain answers, so Q1 ⋢_V Q2."
    let mut v = views();
    v.sources[0].complete = true;
    v.sources[1].complete = true;
    let q1 = parse_program("q1(X, Y) :- p(X, Y).").unwrap();
    let q2 = parse_program("q2(X, Y) :- r(X, Y).").unwrap();
    let db = Database::parse("v1(a). v2(b).").unwrap();
    let oracle = BruteForceOracle::with_symbols(&["a", "b"], World::AsDeclared);
    let opts = EvalOptions::default();

    let got1 = oracle
        .certain(&q1, &Symbol::new("q1"), &v, &db, &opts)
        .unwrap();
    let expected: BTreeSet<Tuple> = [vec![Term::sym("a"), Term::sym("b")]].into_iter().collect();
    assert_eq!(got1, OracleAnswer::Certain(expected));

    let got2 = oracle
        .certain(&q2, &Symbol::new("q2"), &v, &db, &opts)
        .unwrap();
    assert_eq!(got2, OracleAnswer::Certain(BTreeSet::new()));
    // Hence certain(Q1, I) ⊄ certain(Q2, I): the relative containment that
    // held open-world fails closed-world — the oracle is the witness,
    // since closed-world decision procedures are an open problem (§6).
}

#[test]
fn why_the_closed_world_forces_p_a_b() {
    // With the two-constant domain, completeness of v1 and v2 pins p
    // down: p ⊆ {a} × {b}; nonempty in both columns — so p = {(a, b)}.
    // The oracle must therefore also see r-free databases only.
    let mut v = views();
    v.sources[0].complete = true;
    v.sources[1].complete = true;
    let who = parse_program("w(X, Y) :- p(X, Y).").unwrap();
    let db = Database::parse("v1(a). v2(b). v3(a, b).").unwrap();
    // With v3(a, b) stored too, r(a, b) is additionally forced.
    let oracle = BruteForceOracle::with_symbols(&["a", "b"], World::AsDeclared);
    let got = oracle
        .certain(&who, &Symbol::new("w"), &v, &db, &EvalOptions::default())
        .unwrap();
    let expected: BTreeSet<Tuple> = [vec![Term::sym("a"), Term::sym("b")]].into_iter().collect();
    assert_eq!(got, OracleAnswer::Certain(expected));
    let q2 = parse_program("q2(X, Y) :- r(X, Y).").unwrap();
    let got2 = oracle
        .certain(&q2, &Symbol::new("q2"), &v, &db, &EvalOptions::default())
        .unwrap();
    assert_eq!(
        got2,
        OracleAnswer::Certain([vec![Term::sym("a"), Term::sym("b")]].into_iter().collect())
    );
}

#[test]
fn counterexample_search_mechanizes_example5() {
    use relcont::mediator::certain::find_containment_counterexample;
    // Closed world: the search must find a witness instance — Example 5's
    // own I = {v1(a), v2(b)} (or an equivalent one).
    let mut v = views();
    v.sources[0].complete = true;
    v.sources[1].complete = true;
    let q1 = parse_program("q1(X, Y) :- p(X, Y).").unwrap();
    let q2 = parse_program("q2(X, Y) :- r(X, Y).").unwrap();
    // Shrink the search space: a single-constant domain suffices to break
    // the containment (I = {v1(a), v2(a)} forces p(a, a)).
    let oracle = BruteForceOracle::with_symbols(&["a"], World::AsDeclared);
    let witness = find_containment_counterexample(
        &oracle,
        &q1,
        &Symbol::new("q1"),
        &q2,
        &Symbol::new("q2"),
        &v,
        &EvalOptions::default(),
    )
    .unwrap();
    let (instance, tuple) = witness.expect("closed world breaks the containment");
    assert_eq!(tuple, vec![Term::sym("a"), Term::sym("a")]);
    // The witness instance must mention v1 or v2 (the complete sources).
    assert!(instance.total_len() >= 1, "{instance}");

    // Open world: no counterexample exists. (The domain needs two
    // constants: over a single constant, `v1(a)` would force `p(a, a)`
    // within the bounded domain, which over-approximates the open-world
    // semantics.)
    let open = views();
    let oracle = BruteForceOracle::with_symbols(&["a", "b"], World::Open);
    let none = find_containment_counterexample(
        &oracle,
        &q1,
        &Symbol::new("q1"),
        &q2,
        &Symbol::new("q2"),
        &open,
        &EvalOptions::default(),
    )
    .unwrap();
    assert!(none.is_none());
}

#[test]
fn open_world_oracle_agrees_with_plan_route_on_example5_family() {
    // Sweep tiny instances: the oracle (semantics) and the plan-based
    // certain answers must coincide under the open world.
    let v = views();
    let q1 = parse_program("q1(X, Y) :- p(X, Y).").unwrap();
    let instances = [
        "v1(a).",
        "v2(b).",
        "v1(a). v2(b).",
        "v3(a, b).",
        "v1(a). v3(a, b).",
        "v3(a, a). v3(b, b).",
    ];
    let oracle = BruteForceOracle::with_symbols(&["a", "b"], World::Open);
    for src in instances {
        let db = Database::parse(src).unwrap();
        let got = oracle
            .certain(&q1, &Symbol::new("q1"), &v, &db, &EvalOptions::default())
            .unwrap();
        let plan = relcont::mediator::certain::certain_answers(
            &q1,
            &Symbol::new("q1"),
            &v,
            &db,
            &EvalOptions::default(),
        )
        .unwrap();
        let plan_set: BTreeSet<Tuple> = plan.tuples().iter().cloned().collect();
        assert_eq!(got, OracleAnswer::Certain(plan_set), "instance {src}");
    }
}
