//! End-to-end observability tests: the deterministic pipeline counters of
//! the paper's Example 1/2 workloads, the JSON shape of the pipeline
//! report, and the cost of the instrumentation when no recorder is
//! installed.

use std::sync::Arc;

use qc_obs::{Counter, PipelineRecorder, PipelineReport, Recorder};
use relcont::containment::datalog_ucq::{datalog_contained_in_ucq, FixpointBudget};
use relcont::datalog::{parse_program, Program, Symbol, Ucq};
use relcont::mediator::inverse_rules::inverse_rules;
use relcont::mediator::relative::{explain_containment, ContainmentKind};
use relcont::mediator::schema::example1_sources;

fn prog(s: &str) -> Program {
    parse_program(s).unwrap()
}

fn sym(s: &str) -> Symbol {
    Symbol::new(s)
}

fn q1() -> Program {
    prog("q1(CarNo, Review) :- CarDesc(CarNo, Model, C, Y), Review(Model, Review, Rating).")
}

fn q2() -> Program {
    prog("q2(CarNo, Review) :- CarDesc(CarNo, Model, C, Y), Review(Model, Review, 10).")
}

/// Runs `f` under a fresh pipeline recorder and returns the report.
fn record(name: &str, f: impl FnOnce()) -> PipelineReport {
    let recorder = Arc::new(PipelineRecorder::new());
    let guard = qc_obs::install(recorder.clone() as Arc<dyn Recorder>);
    f();
    drop(guard);
    recorder.report(name)
}

/// The acceptance scenario: running Example 1's `Q1 vs Q2` classification
/// produces a nested per-stage report with exact, deterministic counters.
#[test]
fn example1_pipeline_counters_are_deterministic() {
    let views = example1_sources();
    let report = record("example1", || {
        let kind = explain_containment(&q1(), &sym("q1"), &q2(), &sym("q2"), &views).unwrap();
        assert_eq!(kind, ContainmentKind::OnlyRelative);
    });

    // Exact counter values (≥3, per the acceptance criterion). Example 2
    // inverts the three sources into three inverse rules; the plan keeps
    // two disjuncts (RedCars- and AntiqueCars-based), which expand into
    // two rules over the mediated schema.
    assert_eq!(report.counter(Counter::InverseRulesGenerated), 3);
    assert_eq!(report.counter(Counter::PlanDisjuncts), 2);
    assert_eq!(report.counter(Counter::ExpansionRules), 2);
    assert_eq!(report.counter(Counter::FnElimSkolemsEliminated), 1);

    // Per-stage spans exist, nest under the pipeline, and carry nonzero
    // work counters.
    let explain = report.find("explain_containment").expect("explain span");
    assert!(explain.find("classical_check").is_some());
    let relative = explain.find("relative_containment").expect("relative span");
    let plan = relative.find("plan_construction").expect("plan span");
    assert!(plan.counter(Counter::InverseRulesGenerated) > 0);
    assert!(
        plan.find("fn_elim")
            .expect("fn_elim span")
            .counter(Counter::FnElimRulesEmitted)
            > 0
    );
    let expansion = relative.find("expansion").expect("expansion span");
    assert!(expansion.counter(Counter::ExpansionRules) > 0);
    let check = relative.find("containment_check").expect("check span");
    assert!(check.counter(Counter::HomSearchNodes) > 0);

    // Inclusive attribution: every span's counter is ≥ the sum over its
    // children.
    fn inclusive(r: &PipelineReport) {
        for c in Counter::ALL {
            let child_sum: u64 = r.children.iter().map(|ch| ch.counter(c)).sum();
            assert!(r.counter(c) >= child_sum, "{}: {c}", r.name);
        }
        r.children.iter().for_each(inclusive);
    }
    inclusive(&report);
}

/// The JSON shape of the report: the schema the `--metrics-json` flag
/// promises (name / duration_ns / counters / children at every level).
#[test]
fn pipeline_report_json_schema() {
    let views = example1_sources();
    let report = record("schema", || {
        explain_containment(&q1(), &sym("q1"), &q2(), &sym("q2"), &views).unwrap();
    });
    let v = serde_json::to_value(&report).unwrap();
    fn check_node(v: &serde_json::Value) {
        use serde_json::Value;
        assert!(matches!(v.get_field("name"), Value::Str(_)));
        assert!(matches!(
            v.get_field("duration_ns"),
            Value::UInt(_) | Value::Int(_)
        ));
        let counters = v.get_field("counters");
        assert!(matches!(counters, Value::Object(_)));
        if let Value::Object(fields) = counters {
            for (k, val) in fields {
                assert!(Counter::from_name(k).is_some(), "unknown counter {k}");
                assert!(matches!(val, Value::UInt(_) | Value::Int(_)));
            }
        }
        let children = v.get_field("children").as_array().expect("children array");
        children.iter().for_each(check_node);
    }
    check_node(&v);
}

/// Serializing a report to JSON and parsing it back is lossless.
#[test]
fn pipeline_report_json_round_trip() {
    let views = example1_sources();
    let report = record("round-trip", || {
        explain_containment(&q1(), &sym("q1"), &q2(), &sym("q2"), &views).unwrap();
    });
    let json = serde_json::to_string_pretty(&report).unwrap();
    let back: PipelineReport = serde_json::from_str(&json).unwrap();
    assert_eq!(report, back);
}

/// Example 2's construction in isolation: inverting the three Example 1
/// sources yields exactly three inverse rules (one per view subgoal).
#[test]
fn example2_inverse_rule_counters() {
    let views = example1_sources();
    let report = record("example2", || {
        let inv = inverse_rules(&views);
        assert_eq!(inv.rules().len(), 3);
    });
    assert_eq!(report.counter(Counter::InverseRulesGenerated), 3);
}

/// The type fixpoint reports its work deterministically, and exhaustion
/// errors carry consumed-vs-limit provenance.
#[test]
fn fixpoint_counters_and_budget_provenance() {
    let tc = prog("t(X, Y) :- e(X, Y). t(X, Z) :- t(X, Y), e(Y, Z).");
    let loose = Ucq::single(relcont::datalog::parse_query("u(X, Y) :- e(X, A), e(B, Y).").unwrap());
    let report = record("fixpoint", || {
        assert!(
            datalog_contained_in_ucq(&tc, &sym("t"), &loose, &FixpointBudget::default()).unwrap()
        );
    });
    assert!(report.find("datalog_in_ucq_fixpoint").is_some());
    let iters = report.counter(Counter::FixpointIterations);
    assert!(
        iters >= 2,
        "fixpoint must take ≥2 rounds to stabilize, took {iters}"
    );
    assert!(report.counter(Counter::FixpointComposeCalls) > 0);
    assert!(
        report.counter(Counter::FixpointComposeCacheHits)
            <= report.counter(Counter::FixpointComposeCalls)
    );
    assert!(report.counter(Counter::FixpointTypesRecorded) > 0);

    // Budget exhaustion reports the tripping stage and consumed/limit.
    let tiny = FixpointBudget {
        max_iterations: 1,
        ..FixpointBudget::default()
    };
    let err = datalog_contained_in_ucq(&tc, &sym("t"), &loose, &tiny).unwrap_err();
    let msg = err.to_string();
    assert!(
        msg.contains("fixpoint/iterations") && msg.contains("of 1 units"),
        "budget error must report stage and consumed/limit: {msg}"
    );
}

/// With no recorder installed, the instrumentation is a cheap no-op: the
/// thread-local check costs nanoseconds, so 10M counter bumps must finish
/// far faster than any real workload (generous bound to stay robust on
/// slow CI machines).
#[test]
fn uninstalled_instrumentation_is_cheap() {
    assert!(!qc_obs::is_active());
    let start = std::time::Instant::now();
    for _ in 0..10_000_000u64 {
        qc_obs::count(Counter::HomSearchNodes, 1);
    }
    let elapsed = start.elapsed();
    assert!(
        elapsed < std::time::Duration::from_secs(2),
        "10M no-op counts took {elapsed:?}"
    );
}
