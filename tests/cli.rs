//! End-to-end tests of the `relcont` CLI and `relcont-repl` binaries.

use std::io::Write;
use std::process::{Command, Stdio};

fn write_tmp(dir: &std::path::Path, name: &str, content: &str) -> std::path::PathBuf {
    let p = dir.join(name);
    std::fs::write(&p, content).expect("write temp file");
    p
}

fn tmpdir(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("relcont-cli-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&d).expect("create temp dir");
    d
}

#[test]
fn cli_check_and_plan_and_certain() {
    let dir = tmpdir("basic");
    let views = write_tmp(
        &dir,
        "views.dl",
        "RedCars(CarNo, Model, Year) :- CarDesc(CarNo, Model, red, Year).
         AntiqueCars(CarNo, Model, Year) :- CarDesc(CarNo, Model, Color, Year), Year < 1970.
         CarAndDriver(Model, Review) :- Review(Model, Review, 10).",
    );
    let q1 = write_tmp(
        &dir,
        "q1.dl",
        "q1(CarNo, Review) :- CarDesc(CarNo, Model, C, Y), Review(Model, Review, Rating).",
    );
    let q2 = write_tmp(
        &dir,
        "q2.dl",
        "q2(CarNo, Review) :- CarDesc(CarNo, Model, C, Y), Review(Model, Review, 10).",
    );
    let data = write_tmp(
        &dir,
        "data.dl",
        "RedCars(c1, corolla, 1988). CarAndDriver(corolla, nice).",
    );
    let bin = env!("CARGO_BIN_EXE_relcont");

    // Only-relative containment: exit 0 and explanatory output.
    let out = Command::new(bin)
        .args(["check", "--views"])
        .arg(&views)
        .args(["--q1"])
        .arg(&q1)
        .args(["--q2"])
        .arg(&q2)
        .output()
        .expect("run relcont");
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("only relative"), "{stdout}");

    // The classical direction reports "classically".
    let out = Command::new(bin)
        .args(["check", "--views"])
        .arg(&views)
        .args(["--q1"])
        .arg(&q2)
        .args(["--q2"])
        .arg(&q1)
        .output()
        .unwrap();
    assert!(String::from_utf8_lossy(&out.stdout).contains("classically"));

    // Plan printing.
    let out = Command::new(bin)
        .args(["plan", "--views"])
        .arg(&views)
        .args(["--query"])
        .arg(&q1)
        .output()
        .unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("RedCars"), "{stdout}");
    assert!(stdout.contains("AntiqueCars"), "{stdout}");

    // Certain answers.
    let out = Command::new(bin)
        .args(["certain", "--views"])
        .arg(&views)
        .args(["--query"])
        .arg(&q1)
        .args(["--instance"])
        .arg(&data)
        .output()
        .unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("q1(c1, nice)."), "{stdout}");
}

#[test]
fn cli_binding_patterns_via_directives() {
    let dir = tmpdir("bp");
    let views = write_tmp(
        &dir,
        "views.dl",
        "Catalog(Author, Isbn) :- authored(Isbn, Author).
         PriceOf(Isbn, Price) :- price(Isbn, Price).
         %% adorn Catalog bf
         %% adorn PriceOf bf",
    );
    let q_eco = write_tmp(&dir, "qe.dl", "qe(P) :- authored(I, eco), price(I, P).");
    let q_all = write_tmp(&dir, "qa.dl", "qa(P) :- price(I, P).");
    let data = write_tmp(
        &dir,
        "data.dl",
        "Catalog(eco, i1). PriceOf(i1, 30). PriceOf(i9, 99).",
    );
    let bin = env!("CARGO_BIN_EXE_relcont");

    // BP containment: the broad query has no reachable answers.
    let out = Command::new(bin)
        .args(["check", "--bp", "--views"])
        .arg(&views)
        .args(["--q1"])
        .arg(&q_all)
        .args(["--q2"])
        .arg(&q_eco)
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");

    // Reachable certain answers exclude the unreachable price.
    let out = Command::new(bin)
        .args(["certain", "--bp", "--views"])
        .arg(&views)
        .args(["--query"])
        .arg(&q_eco)
        .args(["--instance"])
        .arg(&data)
        .output()
        .unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("qe(30)."), "{stdout}");
    assert!(!stdout.contains("99"), "{stdout}");
}

#[test]
fn cli_resource_limits_yield_exit_3_and_tagged_metrics() {
    let dir = tmpdir("limits");
    let views = write_tmp(
        &dir,
        "views.dl",
        "RedCars(CarNo, Model, Year) :- CarDesc(CarNo, Model, red, Year).
         CarAndDriver(Model, Review) :- Review(Model, Review, 10).",
    );
    let q1 = write_tmp(
        &dir,
        "q1.dl",
        "q1(CarNo, Review) :- CarDesc(CarNo, Model, C, Y), Review(Model, Review, Rating).",
    );
    let q2 = write_tmp(
        &dir,
        "q2.dl",
        "q2(CarNo, Review) :- CarDesc(CarNo, Model, C, Y), Review(Model, Review, 10).",
    );
    let metrics = dir.join("metrics.json");
    let bin = env!("CARGO_BIN_EXE_relcont");

    // A one-unit budget stops the decision: exit 3, "undecided" on stderr,
    // and the metrics JSON tagged with the unknown verdict.
    let out = Command::new(bin)
        .args(["check", "--budget", "1", "--views"])
        .arg(&views)
        .args(["--q1"])
        .arg(&q1)
        .args(["--q2"])
        .arg(&q2)
        .args(["--metrics-json"])
        .arg(&metrics)
        .output()
        .expect("run relcont");
    assert_eq!(out.status.code(), Some(3), "{out:?}");
    assert!(String::from_utf8_lossy(&out.stderr).contains("undecided"));
    let json = std::fs::read_to_string(&metrics).expect("metrics written");
    assert!(json.contains("\"verdict\": \"unknown\""), "{json}");

    // A generous budget (and timeout) lets the same check finish: exit 0 and
    // a "contained" verdict tag.
    let out = Command::new(bin)
        .args([
            "check",
            "--budget",
            "1000000",
            "--timeout",
            "60000",
            "--views",
        ])
        .arg(&views)
        .args(["--q1"])
        .arg(&q1)
        .args(["--q2"])
        .arg(&q2)
        .args(["--metrics-json"])
        .arg(&metrics)
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    let json = std::fs::read_to_string(&metrics).unwrap();
    assert!(json.contains("\"verdict\": \"contained\""), "{json}");

    // A malformed limit is a usage error, not a crash.
    let out = Command::new(bin)
        .args(["check", "--budget", "lots", "--views"])
        .arg(&views)
        .args(["--q1"])
        .arg(&q1)
        .args(["--q2"])
        .arg(&q2)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2), "{out:?}");
}

#[test]
fn cli_eval_metrics_expose_ra_engine_counters() {
    // A recursive program over a non-trivial EDB routes to the compiled
    // RA engine under the default adaptive tiering, and the metrics JSON
    // must surface the compile/eval instrumentation: rule count, magic
    // pruning, tier counter, and both timing histograms.
    let dir = tmpdir("ra-metrics");
    let prog = write_tmp(
        &dir,
        "prog.dl",
        "t(X, Y) :- e(X, Y).
         t(X, Z) :- t(X, Y), e(Y, Z).
         q(Y) :- t(c0, Y).",
    );
    // Two disconnected chains: only the c-chain is reachable from the
    // seed, so the magic-sets rewrite has something to prune.
    let mut edges = String::new();
    for i in 0..20 {
        edges.push_str(&format!("e(c{i}, c{}).\ne(d{i}, d{}).\n", i + 1, i + 1));
    }
    let data = write_tmp(&dir, "data.dl", &edges);
    let metrics = dir.join("metrics.json");
    let out = Command::new(env!("CARGO_BIN_EXE_relcont"))
        .args(["eval", "--program"])
        .arg(&prog)
        .args(["--data"])
        .arg(&data)
        .args(["--ans", "q", "--metrics-json"])
        .arg(&metrics)
        .output()
        .expect("run relcont");
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("[\"c1\"]"), "{stdout}");
    assert!(stdout.contains("[\"c20\"]"), "{stdout}");
    assert!(!stdout.contains("d1"), "{stdout}");
    let json = std::fs::read_to_string(&metrics).expect("metrics written");
    for key in [
        "\"ra_rules_compiled\"",
        "\"ra_magic_pruned_tuples\"",
        "\"eval_tier_ra\"",
        "\"ra_compile_ns\"",
        "\"ra_eval_ns\"",
    ] {
        assert!(json.contains(key), "missing {key} in {json}");
    }
}

#[test]
fn repl_stats_reports_eval_tier() {
    // The REPL's `:stats` tree carries the engine-tier counters, so a
    // session can tell which kernel served its certain-answer runs
    // (conjunctive plans stay on the tuple kernel under adaptive tiering).
    let bin = env!("CARGO_BIN_EXE_relcont-repl");
    let mut child = Command::new(bin)
        .env("NO_PROMPT", "1")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .unwrap();
    let script = "view v0(A, B) :- e(A, B).
query q(X, Y) :- e(X, Y).
fact v0(1, 2).
certain q
:stats
quit
";
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(script.as_bytes())
        .unwrap();
    let out = child.wait_with_output().unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("q(1, 2)"), "{stdout}");
    assert!(stdout.contains("eval_tier_tuple=1"), "{stdout}");
}

#[test]
fn repl_limit_command() {
    let bin = env!("CARGO_BIN_EXE_relcont-repl");
    let mut child = Command::new(bin)
        .env("NO_PROMPT", "1")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .unwrap();
    let script = "view V(A, B) :- p(A, B).
query qa(X) :- p(X, Y).
query qb(X) :- p(X, X).
:limit budget 1
check qb qa
:limit
:limit off
check qb qa
quit
";
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(script.as_bytes())
        .unwrap();
    let out = child.wait_with_output().unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("qb vs qa: unknown"), "{stdout}");
    assert!(stdout.contains("budget exhausted"), "{stdout}");
    assert!(stdout.contains("budget: 1 units"), "{stdout}");
    assert!(stdout.contains("resource limits removed"), "{stdout}");
    assert!(
        stdout.contains("qb vs qa: contained (classically)"),
        "{stdout}"
    );
}

#[test]
fn cli_reports_usage_errors() {
    let bin = env!("CARGO_BIN_EXE_relcont");
    let out = Command::new(bin).arg("bogus").output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
    let out = Command::new(bin).args(["check"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn repl_scripted_session() {
    let bin = env!("CARGO_BIN_EXE_relcont-repl");
    let mut child = Command::new(bin)
        .env("NO_PROMPT", "1")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn repl");
    let script = "view V(A, B) :- p(A, B).
query qa(X) :- p(X, Y).
query qb(X) :- p(X, X).
check qb qa
check qa qb
fact V(a, a).
certain qa
plan qb
boguscmd
quit
";
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(script.as_bytes())
        .unwrap();
    let out = child.wait_with_output().unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("qb vs qa: contained (classically)"),
        "{stdout}"
    );
    assert!(stdout.contains("qa vs qb: not contained"), "{stdout}");
    assert!(stdout.contains("qa(a)."), "{stdout}");
    assert!(stdout.contains("error: unknown command"), "{stdout}");
}

#[test]
fn cli_csv_and_validate() {
    let dir = tmpdir("csv");
    let views = write_tmp(
        &dir,
        "views.dl",
        "RedCars(CarNo, Model, Year) :- CarDesc(CarNo, Model, red, Year).
         CarAndDriver(Model, Review) :- Review(Model, Review, 10).",
    );
    let q1 = write_tmp(
        &dir,
        "q1.dl",
        "q1(CarNo, Review) :- CarDesc(CarNo, Model, C, Y), Review(Model, Review, Rating).",
    );
    let cars = write_tmp(
        &dir,
        "cars.csv",
        "c1, corolla, 1988\n# comment\nc2, beetle, 1971\n",
    );
    let reviews = write_tmp(&dir, "reviews.csv", "corolla, nice\nbeetle, meh\n");
    let bin = env!("CARGO_BIN_EXE_relcont");

    let out = Command::new(bin)
        .args(["certain", "--views"])
        .arg(&views)
        .args(["--query"])
        .arg(&q1)
        .args([
            "--csv",
            &format!(
                "RedCars={},CarAndDriver={}",
                cars.display(),
                reviews.display()
            ),
        ])
        .output()
        .unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("q1(c1, nice)."), "{stdout}");
    assert!(stdout.contains("q1(c2, meh)."), "{stdout}");

    // validate: consistent setup passes; a typo'd query fails with exit 2.
    let out = Command::new(bin)
        .args(["validate", "--views"])
        .arg(&views)
        .args(["--query"])
        .arg(&q1)
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    let bad = write_tmp(&dir, "bad.dl", "q(X) :- CarDesc(X, M).");
    let out = Command::new(bin)
        .args(["validate", "--views"])
        .arg(&views)
        .args(["--query"])
        .arg(&bad)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("arity"));
}

#[test]
fn repl_analysis_commands() {
    let bin = env!("CARGO_BIN_EXE_relcont-repl");
    let mut child = Command::new(bin)
        .env("NO_PROMPT", "1")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .unwrap();
    let script = "view V(A) :- p(A, B).
view W(C, D) :- r(C, D).
query q(X) :- p(X, Y).
lossless q
coverage q
why q q
quit
";
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(script.as_bytes())
        .unwrap();
    let out = child.wait_with_output().unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("losslessly"), "{stdout}");
    assert!(stdout.contains("uses:   V"), "{stdout}");
    assert!(stdout.contains("unused: W"), "{stdout}");
    assert!(stdout.contains("no witness exists"), "{stdout}");
}

#[test]
fn cli_serve_batch_exit_codes_and_stats() {
    let dir = tmpdir("serve");
    let views = write_tmp(
        &dir,
        "views.dl",
        "RedCars(CarNo, Model, Year) :- CarDesc(CarNo, Model, red, Year).
         AntiqueCars(CarNo, Model, Year) :- CarDesc(CarNo, Model, Color, Year), Year < 1970.
         CarAndDriver(Model, Review) :- Review(Model, Review, 10).",
    );
    let queries = write_tmp(
        &dir,
        "queries.dl",
        "q1(CarNo, Review) :- CarDesc(CarNo, Model, C, Y), Review(Model, Review, Rating).
         q2(CarNo, Review) :- CarDesc(CarNo, Model, C, Y), Review(Model, Review, 10).
         q3(CarNo, Review) :- CarDesc(CarNo, Model, C, Y), Review(Model, Review, 10), Y < 1970.",
    );
    let bin = env!("CARGO_BIN_EXE_relcont");

    // All pairs contained: exit 0, every line tagged with the tier and a
    // trace ID, and the stderr summary accounts for every job (none lost,
    // none shed) with a latency digest. The flight-recorder dump keeps a
    // timeline per request.
    let jobs = write_tmp(&dir, "ok.txt", "% contained pairs\nq1 q2\nq2 q1\n");
    let flight = dir.join("flight.json");
    let out = Command::new(bin)
        .args(["serve", "--views"])
        .arg(&views)
        .args(["--queries"])
        .arg(&queries)
        .args(["--jobs"])
        .arg(&jobs)
        .args(["--flight-recorder"])
        .arg(&flight)
        .output()
        .expect("run relcont serve");
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("q1 vs q2: contained [tier=full, trace=t-"),
        "{stdout}"
    );
    assert!(
        stdout.contains("q2 vs q1: contained [tier=full, trace=t-"),
        "{stdout}"
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("serve: 2 job(s)"), "{stderr}");
    assert!(stderr.contains("2 completed, 0 shed"), "{stderr}");
    assert!(stderr.contains("serve latency: queue-wait"), "{stderr}");
    let dump = std::fs::read_to_string(&flight).expect("flight dump written");
    assert!(dump.matches("\"trace\"").count() >= 2, "{dump}");
    assert!(dump.contains("\"outcome\": \"contained\""), "{dump}");

    // A refuted pair (and no undecided ones): exit 1.
    let jobs = write_tmp(&dir, "refuted.txt", "q1 q2\nq2 q3\n");
    let out = Command::new(bin)
        .args(["serve", "--views"])
        .arg(&views)
        .args(["--queries"])
        .arg(&queries)
        .args(["--jobs"])
        .arg(&jobs)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    assert!(
        String::from_utf8_lossy(&out.stdout).contains("q2 vs q3: not contained"),
        "{out:?}"
    );

    // A starved per-request budget leaves jobs undecided: exit 3, with
    // resource provenance in the verdict line.
    let jobs = write_tmp(&dir, "starved.txt", "q1 q2\n");
    let out = Command::new(bin)
        .args(["serve", "--views"])
        .arg(&views)
        .args(["--queries"])
        .arg(&queries)
        .args(["--jobs"])
        .arg(&jobs)
        .args(["--budget", "1", "--workers", "1"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(3), "{out:?}");
    assert!(
        String::from_utf8_lossy(&out.stdout).contains("budget exhausted"),
        "{out:?}"
    );

    // Usage errors: missing --jobs, and a job naming an unknown query.
    let out = Command::new(bin)
        .args(["serve", "--views"])
        .arg(&views)
        .args(["--queries"])
        .arg(&queries)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let jobs = write_tmp(&dir, "unknown.txt", "q1 nosuch\n");
    let out = Command::new(bin)
        .args(["serve", "--views"])
        .arg(&views)
        .args(["--queries"])
        .arg(&queries)
        .args(["--jobs"])
        .arg(&jobs)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("no rules for query nosuch"),
        "{out:?}"
    );
}
