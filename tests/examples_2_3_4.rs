//! Experiments E2, E3, E7: the paper's plan-construction examples —
//! inverse rules (Example 2), function-term elimination (Example 3), and
//! the semi-interval plan (Example 4).

use relcont::containment::cq::ucq_equivalent;
use relcont::datalog::{parse_program, parse_query, Symbol, Term, Ucq};
use relcont::mediator::fn_elim::eliminate_function_terms;
use relcont::mediator::inverse_rules::{inverse_rules, max_contained_plan};
use relcont::mediator::minicon::{minicon_rewritings, semi_interval_plan};
use relcont::mediator::schema::LavSetting;

fn views() -> LavSetting {
    LavSetting::parse(&[
        "RedCars(CarNo, Model, Year) :- CarDesc(CarNo, Model, red, Year).",
        "AntiqueCars(CarNo, Model, Year) :- CarDesc(CarNo, Model, Color, Year), Year < 1970.",
        "CarAndDriver(Model, Review) :- Review(Model, Review, 10).",
    ])
    .unwrap()
}

#[test]
fn example2_inverse_rules_exactly() {
    let inv = inverse_rules(&views());
    let printed: Vec<String> = inv.rules().iter().map(ToString::to_string).collect();
    assert_eq!(
        printed,
        vec![
            "CarDesc(CarNo, Model, red, Year) :- RedCars(CarNo, Model, Year).",
            "CarDesc(CarNo, Model, f_AntiqueCars_Color(CarNo, Model, Year), Year) :- AntiqueCars(CarNo, Model, Year).",
            "Review(Model, Review, 10) :- CarAndDriver(Model, Review).",
        ]
    );
}

#[test]
fn example3_function_free_plan() {
    let q1 = parse_program(
        "q1(CarNo, Review) :- CarDesc(CarNo, Model, C, Y), Review(Model, Review, Rating).",
    )
    .unwrap();
    let plan = max_contained_plan(&q1, &views());
    assert!(plan.has_function_terms());
    let elim = eliminate_function_terms(&plan).unwrap();
    assert!(!elim.has_function_terms());
    let ucq = elim.unfold(&Symbol::new("q1")).unwrap();
    // P1' of Example 3: exactly the two conjunctive plans.
    let expected = Ucq::new(vec![
        parse_query(
            "q1(CarNo, Review) :- RedCars(CarNo, Model, Year), CarAndDriver(Model, Review).",
        )
        .unwrap(),
        parse_query(
            "q1(CarNo, Review) :- AntiqueCars(CarNo, Model, Year), CarAndDriver(Model, Review).",
        )
        .unwrap(),
    ])
    .unwrap();
    assert_eq!(ucq.disjuncts.len(), 2);
    assert!(ucq_equivalent(&ucq, &expected), "{ucq}");
}

#[test]
fn minicon_agrees_with_example3() {
    let q1 = parse_query(
        "q1(CarNo, Review) :- CarDesc(CarNo, Model, C, Y), Review(Model, Review, Rating).",
    )
    .unwrap();
    let mc = minicon_rewritings(&q1, &views());
    let expected = Ucq::new(vec![
        parse_query(
            "q1(CarNo, Review) :- RedCars(CarNo, Model, Year), CarAndDriver(Model, Review).",
        )
        .unwrap(),
        parse_query(
            "q1(CarNo, Review) :- AntiqueCars(CarNo, Model, Year), CarAndDriver(Model, Review).",
        )
        .unwrap(),
    ])
    .unwrap();
    assert!(ucq_equivalent(&mc, &expected), "{mc}");
}

#[test]
fn example4_p3_exactly() {
    let q3 = parse_query(
        "q3(CarNo, Review) :- CarDesc(CarNo, Model, C, Y), Review(Model, Review, 10), Y < 1970.",
    )
    .unwrap();
    let p3 = semi_interval_plan(&q3, &views());
    assert_eq!(p3.disjuncts.len(), 2, "{p3}");
    let red = p3
        .disjuncts
        .iter()
        .find(|d| d.subgoals.iter().any(|a| a.pred == "RedCars"))
        .expect("RedCars disjunct");
    assert_eq!(red.comparisons.len(), 1);
    assert_eq!(red.comparisons[0].rhs, Term::int(1970));
    let antique = p3
        .disjuncts
        .iter()
        .find(|d| d.subgoals.iter().any(|a| a.pred == "AntiqueCars"))
        .expect("AntiqueCars disjunct");
    assert!(antique.comparisons.is_empty());
}

#[test]
fn example4_p3_does_not_contain_p1() {
    // "Because P3 does not contain plan P1 from Example 3 ... we know
    //  that Q3 does not contain Q1 relative to the views."
    let q1 = parse_query(
        "q1(CarNo, Review) :- CarDesc(CarNo, Model, C, Y), Review(Model, Review, Rating).",
    )
    .unwrap();
    let q3 = parse_query(
        "q3(CarNo, Review) :- CarDesc(CarNo, Model, C, Y), Review(Model, Review, 10), Y < 1970.",
    )
    .unwrap();
    let p1 = minicon_rewritings(&q1, &views());
    let p3 = semi_interval_plan(&q3, &views());
    assert!(!relcont::containment::ucq_contained(&p1, &p3));
    // (and P1 does contain P3)
    assert!(relcont::containment::ucq_contained(&p3, &p1));
}

#[test]
fn inverse_rules_and_minicon_agree_on_random_workloads() {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use relcont::mediator::workloads::{query_program, random_query, random_views, Shape};

    let mut rng = StdRng::seed_from_u64(20260705);
    let mut nonempty = 0;
    for trial in 0..40 {
        let shape = if trial % 2 == 0 {
            Shape::Chain
        } else {
            Shape::Star
        };
        let q = random_query(shape, 1 + trial % 3, 2, &mut rng);
        let v = random_views(3, 2, &mut rng);
        let mc = minicon_rewritings(&q, &v);
        let prog = query_program(&q);
        let inv = eliminate_function_terms(&max_contained_plan(&prog, &v)).unwrap();
        let inv_ucq = match inv.unfold(&Symbol::new("q")) {
            Ok(mut u) => {
                u.disjuncts.retain(|d| {
                    d.subgoals
                        .iter()
                        .all(|a| v.source(a.pred.as_str()).is_some())
                });
                u
            }
            Err(_) => Ucq::empty("q", q.head.arity()),
        };
        if !mc.is_empty() {
            nonempty += 1;
        }
        assert!(
            ucq_equivalent(&mc, &inv_ucq),
            "trial {trial}:\nquery: {q}\nminicon: {mc}\ninverse: {inv_ucq}"
        );
    }
    assert!(nonempty >= 5, "workload too degenerate: {nonempty}");
}

#[test]
fn plan_positivity_mirrors_the_query() {
    // §2.3: "The maximally-contained query plan of a positive query is
    // positive, and the maximally-contained query plan of a recursive
    // query is recursive."
    use relcont::mediator::fn_elim::eliminate_function_terms;
    use relcont::mediator::inverse_rules::max_contained_plan;
    let v = views();
    let positive = qc_datalog_parse(
        "q(C) :- CarDesc(C, M, Col, Y).
         q(C) :- Review(C, R, S).",
    );
    let plan = eliminate_function_terms(&max_contained_plan(&positive, &v)).unwrap();
    assert!(!plan.is_recursive());

    let recursive = qc_datalog_parse(
        "r(X, Y) :- CarDesc(X, Y, C, Z).
         r(X, Y) :- r(X, W), CarDesc(W, Y, C, Z).",
    );
    let plan = eliminate_function_terms(&max_contained_plan(&recursive, &v)).unwrap();
    assert!(plan.is_recursive());
}

fn qc_datalog_parse(src: &str) -> relcont::datalog::Program {
    relcont::datalog::parse_program(src).unwrap()
}
