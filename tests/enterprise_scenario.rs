//! A larger end-to-end scenario: enterprise data integration across six
//! heterogeneous sources — exercising the whole public API surface in one
//! realistic setting (the paper's §1 motivation: "querying multiple
//! databases within an enterprise").
//!
//! Mediated schema:
//!   employee(Id, Dept)            — HR master
//!   salary(Id, Amount)            — payroll
//!   project(Proj, Dept)           — project registry
//!   assigned(Id, Proj)            — staffing
//!   review(Id, Score)             — performance reviews

use relcont::datalog::eval::EvalOptions;
use relcont::datalog::{parse_program, Database, Program, Symbol, Term};
use relcont::mediator::binding::reachable_certain_answers;
use relcont::mediator::certain::certain_answers;
use relcont::mediator::relative::{
    explain_containment, max_contained_ucq_plan, relatively_contained,
    relatively_contained_witness, ContainmentKind,
};
use relcont::mediator::schema::{LavSetting, MediatedSchema};

fn s(n: &str) -> Symbol {
    Symbol::new(n)
}

fn sources() -> LavSetting {
    LavSetting::parse(&[
        // The HR export: employees with departments.
        "HrDirectory(Id, Dept) :- employee(Id, Dept).",
        // Payroll only exports salaries of employees it knows the
        // department of (a join), and only high earners.
        "HighEarners(Id, Amount) :- employee(Id, Dept), salary(Id, Amount), Amount > 100000.",
        // The engineering staffing tool: who works on which engineering
        // project.
        "EngStaffing(Id, Proj) :- assigned(Id, Proj), project(Proj, eng).",
        // The project registry.
        "Projects(Proj, Dept) :- project(Proj, Dept).",
        // Top performance reviews only.
        "TopReviews(Id) :- review(Id, Score), Score >= 9.",
        // Full review export, score included.
        "AllReviews(Id, Score) :- review(Id, Score).",
    ])
    .unwrap()
}

#[test]
fn schema_validates_everything() {
    let schema = MediatedSchema::new([
        ("employee", 2),
        ("salary", 2),
        ("project", 2),
        ("assigned", 2),
        ("review", 2),
    ]);
    let v = sources();
    schema.validate_views(&v).expect("views are well-typed");
    let q = parse_program("q(Id) :- employee(Id, Dept), salary(Id, A).").unwrap();
    schema.validate_query(&q).expect("query is well-typed");
}

#[test]
fn plan_shapes_reflect_source_coverage() {
    let v = sources();
    // Who earns over 100k? Only the HighEarners source helps; the plan
    // has one disjunct.
    let rich = parse_program("rich(Id) :- salary(Id, A), A > 100000.").unwrap();
    let plan = max_contained_ucq_plan(&rich, &s("rich"), &v).unwrap();
    assert_eq!(plan.disjuncts.len(), 1, "{plan}");
    assert!(plan.disjuncts[0]
        .subgoals
        .iter()
        .any(|a| a.pred == "HighEarners"));

    // Who works on an engineering project? Two routes: the staffing tool
    // directly, or assigned ⋈ Projects... but no source exports plain
    // `assigned`, so only EngStaffing survives.
    let eng = parse_program("eng(Id) :- assigned(Id, P), project(P, eng).").unwrap();
    let plan = max_contained_ucq_plan(&eng, &s("eng"), &v).unwrap();
    assert_eq!(plan.disjuncts.len(), 1, "{plan}");
    assert!(plan.disjuncts[0]
        .subgoals
        .iter()
        .any(|a| a.pred == "EngStaffing"));

    // Department listing: only via HrDirectory.
    let depts = parse_program("d(Id, Dept) :- employee(Id, Dept).").unwrap();
    let plan = max_contained_ucq_plan(&depts, &s("d"), &v).unwrap();
    assert_eq!(plan.disjuncts.len(), 1);
}

#[test]
fn relative_containments_over_the_enterprise() {
    let v = sources();
    // "Reviewed employees" vs "employees reviewed with score >= 9":
    // classically incomparable-ish, but TopReviews only returns >= 9...
    // AllReviews returns everything, so the unrestricted query is NOT
    // contained in the top one.
    let reviewed = parse_program("qa(Id) :- review(Id, S).").unwrap();
    let top = parse_program("qt(Id) :- review(Id, S), S >= 9.").unwrap();
    assert!(!relatively_contained(&reviewed, &s("qa"), &top, &s("qt"), &v).unwrap());
    // Drop the full export and it flips: everything retrievable is top.
    let narrowed = v.without("AllReviews");
    assert_eq!(
        explain_containment(&reviewed, &s("qa"), &top, &s("qt"), &narrowed).unwrap(),
        ContainmentKind::OnlyRelative
    );

    // High earner salaries are always > 50000 relative to the sources.
    let fifty = parse_program("q5(Id) :- salary(Id, A), A > 50000.").unwrap();
    let any_salary = parse_program("qs(Id) :- salary(Id, A).").unwrap();
    assert!(relatively_contained(&any_salary, &s("qs"), &fifty, &s("q5"), &v).unwrap());

    // The witness machinery explains a failure: reviewed ⋢ top because
    // of the AllReviews route.
    let w = relatively_contained_witness(&reviewed, &s("qa"), &top, &s("qt"), &v)
        .unwrap()
        .expect_err("not contained");
    assert!(
        w.plan.subgoals.iter().any(|a| a.pred == "AllReviews"),
        "{w}"
    );
}

#[test]
fn certain_answers_across_sources() {
    let v = sources();
    let db = Database::parse(
        "HrDirectory(e1, eng). HrDirectory(e2, sales).
         HighEarners(e1, 150000).
         EngStaffing(e1, apollo).
         Projects(apollo, eng). Projects(crm, sales).
         TopReviews(e2). AllReviews(e1, 7). AllReviews(e2, 10).",
    )
    .unwrap();
    let opts = EvalOptions::default();

    // Rich engineers: join across HR, payroll, and staffing.
    let q =
        parse_program("q(Id) :- employee(Id, eng), salary(Id, A), A > 100000, assigned(Id, P).")
            .unwrap();
    let ans = certain_answers(&q, &s("q"), &v, &db, &opts).unwrap();
    assert_eq!(ans.len(), 1);
    assert!(ans.contains(&vec![Term::sym("e1")]));

    // Reviewed with known score: AllReviews gives both; TopReviews alone
    // would give none (score projected away).
    let q2 = parse_program("q2(Id, S) :- review(Id, S).").unwrap();
    let ans = certain_answers(&q2, &s("q2"), &v, &db, &opts).unwrap();
    assert_eq!(ans.len(), 2);

    // "Has a top review" is answerable from TopReviews even without the
    // score: e2 via both routes.
    let q3 = parse_program("q3(Id) :- review(Id, S), S >= 9.").unwrap();
    let ans = certain_answers(&q3, &s("q3"), &v, &db, &opts).unwrap();
    assert!(ans.contains(&vec![Term::sym("e2")]));
}

#[test]
fn access_restricted_payroll() {
    // Payroll requires an employee id as input; HR is free-access.
    let mut v = sources();
    let idx = v
        .sources
        .iter()
        .position(|x| x.name == "HighEarners")
        .unwrap();
    v.sources[idx] = v.sources[idx].clone().with_adornment("bf");

    let db = Database::parse(
        "HrDirectory(e1, eng). HrDirectory(e3, eng).
         HighEarners(e1, 150000). HighEarners(e9, 200000).",
    )
    .unwrap();
    // Salaries of engineers: ids flow from HrDirectory into the payroll
    // lookup; e9 is unreachable (not in HR).
    let q = parse_program("q(A) :- employee(Id, eng), salary(Id, A).").unwrap();
    let got = reachable_certain_answers(&q, &s("q"), &v, &db, &EvalOptions::default()).unwrap();
    assert_eq!(got.len(), 1);
    assert!(got.contains(&vec![Term::int(150000)]));
}

#[test]
fn multi_rule_union_queries() {
    let v = sources();
    // "People of interest": high earners or top-reviewed.
    let poi: Program = parse_program(
        "poi(Id) :- salary(Id, A), A > 100000.
         poi(Id) :- review(Id, S), S >= 9.",
    )
    .unwrap();
    let plan = max_contained_ucq_plan(&poi, &s("poi"), &v).unwrap();
    // HighEarners + TopReviews + AllReviews-with-constraint.
    assert!(plan.disjuncts.len() >= 2, "{plan}");
    let anyone = parse_program("everyone(Id) :- employee(Id, D).").unwrap();
    // poi ⋢ everyone: review-based POIs need no employee row.
    assert!(!relatively_contained(&poi, &s("poi"), &anyone, &s("everyone"), &v).unwrap());
    // But the salary branch alone is contained in it (HighEarners joins
    // employee).
    let rich = parse_program("rich(Id) :- salary(Id, A), A > 100000.").unwrap();
    assert!(relatively_contained(&rich, &s("rich"), &anyone, &s("everyone"), &v).unwrap());
}
