//! A guided tour of every result in the paper, in order.
//!
//! ```sh
//! cargo run --release --example paper_walkthrough
//! ```
//!
//! Walks §1–§6 of "Query Containment for Data Integration Systems"
//! (Millstein, Levy, Friedman; PODS 2000), executing each example and a
//! demonstration of each theorem with the machinery of this repository.

use relcont::containment::cq_contained;
use relcont::datalog::eval::EvalOptions;
use relcont::datalog::{parse_program, parse_query, Database, Symbol};
use relcont::mediator::binding::reachable_certain_answers;
use relcont::mediator::certain::{BruteForceOracle, OracleAnswer, World};
use relcont::mediator::fn_elim::eliminate_function_terms;
use relcont::mediator::inverse_rules::{inverse_rules, max_contained_plan};
use relcont::mediator::minicon::semi_interval_plan;
use relcont::mediator::reductions::{thm33_reduction, Cnf3, CnfVar, Lit};
use relcont::mediator::relative::{
    explain_containment, relatively_contained, relatively_contained_bp,
};
use relcont::mediator::schema::LavSetting;

fn heading(s: &str) {
    println!("\n==== {s} ====");
}

fn main() {
    let s = |n: &str| Symbol::new(n);

    // ------------------------------------------------------------- §1/§2
    heading("§1–2 · Example 1: the car/review mediated schema");
    let views = LavSetting::parse(&[
        "RedCars(CarNo, Model, Year) :- CarDesc(CarNo, Model, red, Year).",
        "AntiqueCars(CarNo, Model, Year) :- CarDesc(CarNo, Model, Color, Year), Year < 1970.",
        "CarAndDriver(Model, Review) :- Review(Model, Review, 10).",
    ])
    .unwrap();
    let q1 = parse_program(
        "q1(CarNo, Review) :- CarDesc(CarNo, Model, C, Y), Review(Model, Review, Rating).",
    )
    .unwrap();
    let q2 = parse_program(
        "q2(CarNo, Review) :- CarDesc(CarNo, Model, C, Y), Review(Model, Review, 10).",
    )
    .unwrap();
    let q3 = parse_program(
        "q3(CarNo, Review) :- CarDesc(CarNo, Model, C, Y), Review(Model, Review, 10), Y < 1970.",
    )
    .unwrap();
    let cq1 = parse_query(&q1.rules()[0].to_string()).unwrap();
    let cq2 = parse_query(&q2.rules()[0].to_string()).unwrap();
    println!(
        "classically:  Q2 \u{2286} Q1: {}   Q1 \u{2286} Q2: {}",
        cq_contained(&cq2, &cq1),
        cq_contained(&cq1, &cq2)
    );
    println!(
        "relative:     Q1 explained vs Q2: {}",
        explain_containment(&q1, &s("q1"), &q2, &s("q2"), &views).unwrap()
    );
    println!(
        "              Q1 explained vs Q3: {}",
        explain_containment(&q1, &s("q1"), &q3, &s("q3"), &views).unwrap()
    );
    println!(
        "without RedCars: Q1 vs Q3: {}",
        explain_containment(&q1, &s("q1"), &q3, &s("q3"), &views.without("RedCars")).unwrap()
    );

    // --------------------------------------------------------------- §2.3
    heading("§2.3 · Examples 2 & 3: maximally-contained plans");
    println!("inverse rules:");
    for r in inverse_rules(&views).rules() {
        println!("  {r}");
    }
    let elim = eliminate_function_terms(&max_contained_plan(&q1, &views)).unwrap();
    println!("after function-term elimination, unfolded:");
    for d in elim.unfold(&s("q1")).unwrap().disjuncts {
        println!("  {}", d.tidy_names().to_rule());
    }

    // ----------------------------------------------------------------- §3
    heading("§3 · Theorem 3.3: the Π₂ᵖ-hardness reduction, live");
    let l = |var, positive| Lit { var, positive };
    let f = Cnf3 {
        num_x: 2,
        num_y: 2,
        clauses: vec![
            [
                l(CnfVar::X(0), true),
                l(CnfVar::X(1), true),
                l(CnfVar::Y(0), true),
            ],
            [
                l(CnfVar::X(0), false),
                l(CnfVar::X(1), false),
                l(CnfVar::Y(1), true),
            ],
        ],
    };
    let inst = thm33_reduction(&f);
    let decided = relatively_contained(
        &inst.contained,
        &inst.contained_ans,
        &inst.container,
        &inst.container_ans,
        &inst.views,
    )
    .unwrap();
    println!(
        "(x1\u{2228}x2\u{2228}y1) \u{2227} (\u{ac}x1\u{2228}\u{ac}x2\u{2228}y2):  \u{2200}\u{2203}-sat = {}   Q2' \u{2291}_V Q1' = {}",
        f.is_forall_exists_satisfiable(),
        decided
    );

    // ----------------------------------------------------------------- §4
    heading("§4 · Binding patterns: executable recursive plans");
    let mut adorned = LavSetting::parse(&[
        "Catalog(Author, Isbn) :- authored(Isbn, Author).",
        "PriceOf(Isbn, Price) :- price(Isbn, Price).",
    ])
    .unwrap();
    adorned.sources[0] = adorned.sources[0].clone().with_adornment("bf");
    adorned.sources[1] = adorned.sources[1].clone().with_adornment("bf");
    let q_eco = parse_program("qe(P) :- authored(I, eco), price(I, P).").unwrap();
    let db = Database::parse("Catalog(eco, i1). PriceOf(i1, 30). PriceOf(i9, 99).").unwrap();
    let got = reachable_certain_answers(&q_eco, &s("qe"), &adorned, &db, &EvalOptions::default())
        .unwrap();
    println!(
        "reachable certain answers for eco's prices: {:?}  (99 is unreachable)",
        got.tuples()
            .iter()
            .map(|t| t[0].to_string())
            .collect::<Vec<_>>()
    );
    let q_all = parse_program("qa(P) :- price(I, P).").unwrap();
    println!(
        "Thm 4.2 decision  Q_all \u{2291}_V,B Q_eco: {}",
        relatively_contained_bp(&q_all, &s("qa"), &q_eco, &s("qe"), &adorned).unwrap()
    );

    // ----------------------------------------------------------------- §5
    heading("§5 · Example 4: semi-interval plans");
    let cq3 = parse_query(&q3.rules()[0].to_string()).unwrap();
    for d in semi_interval_plan(&cq3, &views).disjuncts {
        println!("  {}", d.tidy_names().to_rule());
    }

    // ----------------------------------------------------------------- §6
    heading("§6 · Example 5: open vs closed world");
    let mut ow = LavSetting::parse(&[
        "v1(X) :- p(X, Y).",
        "v2(Y) :- p(X, Y).",
        "v3(X, Y) :- p(X, Y), r(X, Y).",
    ])
    .unwrap();
    let qa = parse_program("qa(X, Y) :- p(X, Y).").unwrap();
    let instance = Database::parse("v1(a). v2(b).").unwrap();
    let open = BruteForceOracle::with_symbols(&["a", "b"], World::Open)
        .certain(&qa, &s("qa"), &ow, &instance, &EvalOptions::default())
        .unwrap();
    println!("open world:   certain(Q1, {{v1(a), v2(b)}}) = {open:?}");
    ow.sources[0].complete = true;
    ow.sources[1].complete = true;
    let closed = BruteForceOracle::with_symbols(&["a", "b"], World::AsDeclared)
        .certain(&qa, &s("qa"), &ow, &instance, &EvalOptions::default())
        .unwrap();
    match closed {
        OracleAnswer::Certain(set) => println!(
            "closed world: certain(Q1, ...) = {:?}  — p(a, b) is forced",
            set.iter()
                .map(|t| format!("({}, {})", t[0], t[1]))
                .collect::<Vec<_>>()
        ),
        OracleAnswer::Inconsistent => println!("closed world: inconsistent"),
    }
    println!("\n(every claim above is also asserted by the test suite)");
}
