//! Theorem 3.3 live: the Π₂ᵖ-hardness reduction as an executable object.
//!
//! ```sh
//! cargo run --release --example hardness_explorer
//! ```
//!
//! Builds the paper's reduction from ∀∃-3CNF to relative containment,
//! shows the generated queries and views for the paper's own example
//! formula, verifies the reduction against a brute-force ∀∃-SAT solver on
//! random formulas, and runs a small scaling sweep (the decision time
//! grows with the number of universal variables — each adds a factor of
//! two to the plan union).

use rand::rngs::StdRng;
use rand::SeedableRng;
use relcont::mediator::reductions::{random_cnf3, thm33_reduction, Cnf3, CnfVar, Lit};
use relcont::mediator::relative::relatively_contained;

fn lit(var: CnfVar, positive: bool) -> Lit {
    Lit { var, positive }
}

fn main() {
    // The paper's example: (x1 ∨ x2 ∨ y1) ∧ (¬x1 ∨ ¬x2 ∨ y2).
    let f = Cnf3 {
        num_x: 2,
        num_y: 2,
        clauses: vec![
            [
                lit(CnfVar::X(0), true),
                lit(CnfVar::X(1), true),
                lit(CnfVar::Y(0), true),
            ],
            [
                lit(CnfVar::X(0), false),
                lit(CnfVar::X(1), false),
                lit(CnfVar::Y(1), true),
            ],
        ],
    };
    println!("== The paper's example formula ==");
    println!("  (x1 \u{2228} x2 \u{2228} y1) \u{2227} (\u{ac}x1 \u{2228} \u{ac}x2 \u{2228} y2)");
    println!(
        "  \u{2200}\u{0233} \u{2203}x\u{0304} satisfiable (brute force): {}",
        f.is_forall_exists_satisfiable()
    );

    let inst = thm33_reduction(&f);
    println!("\n== Generated instance ==");
    println!("  Q1': {}", inst.container.rules()[0]);
    println!("  Q2': {}", inst.contained.rules()[0]);
    println!("  views:");
    for s in &inst.views.sources {
        println!("    {}", s.view.to_rule());
    }
    let got = relatively_contained(
        &inst.contained,
        &inst.contained_ans,
        &inst.container,
        &inst.container_ans,
        &inst.views,
    )
    .unwrap();
    println!("\n  Q2' \u{2291}_V Q1': {got}  (matches \u{2200}\u{2203}-satisfiability)");

    // Validation sweep against brute force.
    println!("\n== Random validation (reduction vs brute force) ==");
    let mut rng = StdRng::seed_from_u64(2026);
    let mut agree = 0;
    let trials = 20;
    for _ in 0..trials {
        let f = random_cnf3(2, 2, 3, &mut rng);
        let expected = f.is_forall_exists_satisfiable();
        let inst = thm33_reduction(&f);
        let got = relatively_contained(
            &inst.contained,
            &inst.contained_ans,
            &inst.container,
            &inst.container_ans,
            &inst.views,
        )
        .unwrap();
        assert_eq!(got, expected, "reduction disagrees with brute force: {f:?}");
        agree += 1;
    }
    println!("  {agree}/{trials} random formulas agree");

    // Scaling sweep: universal variables dominate the cost. Timing and
    // work counters come from the qc-obs pipeline recorder instead of
    // ad-hoc stopwatches.
    println!("\n== Scaling with universal variables (m) ==");
    println!(
        "  {:>3} {:>8} {:>12} {:>10} {:>12}",
        "m", "clauses", "decide (ms)", "disjuncts", "hom nodes"
    );
    for m in 1..=4 {
        let f = random_cnf3(2, m, m + 1, &mut rng);
        let inst = thm33_reduction(&f);
        let recorder = std::sync::Arc::new(qc_obs::PipelineRecorder::new());
        let guard = qc_obs::install(recorder.clone() as std::sync::Arc<dyn qc_obs::Recorder>);
        let _ = relatively_contained(
            &inst.contained,
            &inst.contained_ans,
            &inst.container,
            &inst.container_ans,
            &inst.views,
        )
        .unwrap();
        drop(guard);
        let report = recorder.report("decide");
        println!(
            "  {:>3} {:>8} {:>12.2} {:>10} {:>12}",
            m,
            f.clauses.len(),
            report.duration_ns as f64 / 1e6,
            report.counter(qc_obs::Counter::PlanDisjuncts),
            report.counter(qc_obs::Counter::HomSearchNodes),
        );
    }
}
