//! Binding patterns (§4): querying web sources with access restrictions.
//!
//! ```sh
//! cargo run --example web_bookstore
//! ```
//!
//! Models the paper's Amazon motivation: "one cannot ask for all books
//! and their prices; instead, one obtains the price of a book only if the
//! ISBN is given as input". Sources carry adornments, query plans must be
//! *executable* (Definition 4.1), finding all *reachable certain answers*
//! requires a recursive plan (with a `dom` predicate harvesting constants),
//! and relative containment is decided per Theorems 4.1/4.2.

use relcont::datalog::eval::EvalOptions;
use relcont::datalog::{parse_program, parse_rule, Database, Symbol};
use relcont::mediator::binding::{executable_plan, is_executable_rule, reachable_certain_answers};
use relcont::mediator::relative::relatively_contained_bp;
use relcont::mediator::schema::LavSetting;

fn main() {
    // Mediated schema: authored(Isbn, Author), price(Isbn, Price),
    // cites(Paper1, Paper2). Three web sources with access limitations:
    let mut views = LavSetting::parse(&[
        // Give an author, get their ISBNs.
        "ByAuthor(Author, Isbn) :- authored(Isbn, Author).",
        // Give an ISBN, get its price.
        "PriceOf(Isbn, Price) :- price(Isbn, Price).",
        // Give a paper, get the papers it cites.
        "Cites(P1, P2) :- cites(P1, P2).",
    ])
    .unwrap();
    views.sources[0] = views.sources[0].clone().with_adornment("bf");
    views.sources[1] = views.sources[1].clone().with_adornment("bf");
    views.sources[2] = views.sources[2].clone().with_adornment("bf");
    println!("== Adorned sources ==");
    for s in &views.sources {
        println!("  {}^{}  {}", s.name, s.adornments[0], s.view.to_rule());
    }

    // Executability (Definition 4.1).
    println!("\n== Executability ==");
    for src in [
        "q(P) :- ByAuthor(eco, I), PriceOf(I, P).",
        "q(P) :- PriceOf(I, P).",
    ] {
        let rule = parse_rule(src).unwrap();
        println!(
            "  {:49} executable: {}",
            src,
            is_executable_rule(&rule, &views)
        );
    }

    // The prices of Umberto Eco's books.
    let q = parse_program("q(P) :- authored(I, eco), price(I, P).").unwrap();
    println!("\n== Executable maximally-contained plan (recursive through dom) ==");
    let plan = executable_plan(&q, &views);
    for r in plan.rules() {
        println!("  {r}");
    }
    println!("  plan is recursive: {}", plan.is_recursive());

    let instance = Database::parse(
        "ByAuthor(eco, i1). ByAuthor(eco, i2).
         PriceOf(i1, 30). PriceOf(i2, 45). PriceOf(i9, 99).",
    )
    .unwrap();
    let got = reachable_certain_answers(
        &q,
        &Symbol::new("q"),
        &views,
        &instance,
        &EvalOptions::default(),
    )
    .unwrap();
    let mut rows: Vec<String> = got.tuples().iter().map(|t| t[0].to_string()).collect();
    rows.sort();
    println!("\n== Reachable certain answers ==");
    println!("  prices of eco's books: {{{}}}", rows.join(", "));
    println!("  (i9's price 99 exists in the source but is unreachable)");

    // Transitive citation chains need recursion *in the plan* even though
    // the query below is conjunctive in spirit; here we pose the recursive
    // query directly (reachability from a seed paper).
    let qc = parse_program("reach(P) :- cites(p0, P). reach(P) :- reach(Q), cites(Q, P).").unwrap();
    let citations =
        Database::parse("Cites(p0, p1). Cites(p1, p2). Cites(p2, p3). Cites(p9, p8).").unwrap();
    let got = reachable_certain_answers(
        &qc,
        &Symbol::new("reach"),
        &views,
        &citations,
        &EvalOptions::default(),
    )
    .unwrap();
    let mut rows: Vec<String> = got.tuples().iter().map(|t| t[0].to_string()).collect();
    rows.sort();
    println!("\n== Transitive harvesting through dom ==");
    println!("  papers reachable from p0: {{{}}}", rows.join(", "));

    // Relative containment with binding patterns (Theorems 4.1/4.2).
    // "All prices" sounds strictly broader than "prices of eco's books" —
    // but with these access patterns a sound plan for the broad query has
    // no constant to start calling sources with, so its reachable certain
    // answers are always empty and the containment holds vacuously.
    println!("\n== Relative containment with binding patterns ==");
    let q_eco = parse_program("qe(P) :- authored(I, eco), price(I, P).").unwrap();
    let q_all = parse_program("qa(P) :- price(I, P).").unwrap();
    let c1 = relatively_contained_bp(
        &q_all,
        &Symbol::new("qa"),
        &q_eco,
        &Symbol::new("qe"),
        &views,
    )
    .unwrap();
    println!("  Q_all_prices \u{2291}_V,B Q_eco: {c1}  (no reachable answers at all)");
    // The reverse direction violates Definition 4.5's precondition: the
    // contained side may only use constants that also appear on the
    // containing side (here `eco` does not).
    match relatively_contained_bp(
        &q_eco,
        &Symbol::new("qe"),
        &q_all,
        &Symbol::new("qa"),
        &views,
    ) {
        Ok(c2) => println!("  Q_eco \u{2291}_V,B Q_all_prices: {c2}"),
        Err(e) => println!("  Q_eco \u{2291}_V,B Q_all_prices: n/a ({e})"),
    }
    // Against a query that shares the constant, the check runs — and the
    // redundant extra subgoal keeps the two queries relatively equivalent.
    let q_eco2 = parse_program("qf(P) :- authored(I, eco), price(I, P), authored(I, A).").unwrap();
    let both = relatively_contained_bp(
        &q_eco,
        &Symbol::new("qe"),
        &q_eco2,
        &Symbol::new("qf"),
        &views,
    )
    .unwrap()
        && relatively_contained_bp(
            &q_eco2,
            &Symbol::new("qf"),
            &q_eco,
            &Symbol::new("qe"),
            &views,
        )
        .unwrap();
    println!("  Q_eco \u{2261}_V,B Q_eco': {both}");
}
