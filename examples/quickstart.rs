//! Quickstart: the paper's running example (Example 1), end to end.
//!
//! ```sh
//! cargo run --example quickstart
//! ```
//!
//! Sets up the car/review mediated schema with the three sources of
//! Example 1, then walks through everything §1–§2 of the paper does with
//! them: classical containment, maximally-contained plans (Examples 2
//! and 3), certain answers, and relative containment — including the
//! source-removal twist at the end of Example 1.

use relcont::containment::cq_contained;
use relcont::datalog::eval::EvalOptions;
use relcont::datalog::{parse_program, parse_query, Database, Symbol};
use relcont::mediator::certain::certain_answers;
use relcont::mediator::fn_elim::eliminate_function_terms;
use relcont::mediator::inverse_rules::max_contained_plan;
use relcont::mediator::relative::{relatively_contained, relatively_equivalent};
use relcont::mediator::schema::LavSetting;

fn main() {
    // The mediated schema is virtual: CarDesc(CarNo, Model, Color, Year)
    // and Review(Model, Review, Rating). The data lives in three sources,
    // described local-as-view:
    let views = LavSetting::parse(&[
        "RedCars(CarNo, Model, Year) :- CarDesc(CarNo, Model, red, Year).",
        "AntiqueCars(CarNo, Model, Year) :- CarDesc(CarNo, Model, Color, Year), Year < 1970.",
        "CarAndDriver(Model, Review) :- Review(Model, Review, 10).",
    ])
    .expect("views parse");
    println!("== Sources ==");
    for s in &views.sources {
        println!("  {}", s.view.to_rule());
    }

    // The three queries of Example 1.
    let q1 = parse_program(
        "q1(CarNo, Review) :- CarDesc(CarNo, Model, C, Y), Review(Model, Review, Rating).",
    )
    .unwrap();
    let q2 = parse_program(
        "q2(CarNo, Review) :- CarDesc(CarNo, Model, C, Y), Review(Model, Review, 10).",
    )
    .unwrap();
    let q3 = parse_program(
        "q3(CarNo, Review) :- CarDesc(CarNo, Model, C, Y), Review(Model, Review, 10), Y < 1970.",
    )
    .unwrap();

    // Classical containment: Q2 ⊆ Q1 but not vice versa.
    println!("\n== Classical containment ==");
    let cq1 = parse_query(
        "q1(CarNo, Review) :- CarDesc(CarNo, Model, C, Y), Review(Model, Review, Rating).",
    )
    .unwrap();
    let cq2 =
        parse_query("q2(CarNo, Review) :- CarDesc(CarNo, Model, C, Y), Review(Model, Review, 10).")
            .unwrap();
    println!("  Q2 \u{2286} Q1: {}", cq_contained(&cq2, &cq1));
    println!("  Q1 \u{2286} Q2: {}", cq_contained(&cq1, &cq2));

    // Example 2: the maximally-contained plan via inverse rules.
    println!("\n== Maximally-contained plan for Q1 (Example 2) ==");
    let plan = max_contained_plan(&q1, &views);
    for r in plan.rules() {
        println!("  {r}");
    }

    // Example 3: eliminate the Skolem terms and unfold.
    println!("\n== After function-term elimination + unfolding (Example 3) ==");
    let elim = eliminate_function_terms(&plan).expect("elimination succeeds");
    let ucq = elim.unfold(&Symbol::new("q1")).expect("nonrecursive");
    for d in &ucq.disjuncts {
        println!("  {}", d.to_rule());
    }

    // Certain answers over a concrete source instance.
    println!("\n== Certain answers ==");
    let instance = Database::parse(
        "RedCars(c1, corolla, 1988).
         AntiqueCars(c2, ford, 1960).
         CarAndDriver(corolla, nice). CarAndDriver(ford, classic).",
    )
    .unwrap();
    let opts = EvalOptions::default();
    for (q, name) in [(&q1, "q1"), (&q2, "q2"), (&q3, "q3")] {
        let ans = certain_answers(q, &Symbol::new(name), &views, &instance, &opts).unwrap();
        let mut rows: Vec<String> = ans
            .tuples()
            .iter()
            .map(|t| {
                format!(
                    "({})",
                    t.iter()
                        .map(ToString::to_string)
                        .collect::<Vec<_>>()
                        .join(", ")
                )
            })
            .collect();
        rows.sort();
        println!("  certain({name}) = {{{}}}", rows.join(", "));
    }

    // Relative containment — the paper's contribution.
    println!("\n== Relative containment (Definition 2.4) ==");
    let s = |n: &str| Symbol::new(n);
    let rel = |a: &_, an: &str, b: &_, bn: &str, v: &LavSetting| {
        relatively_contained(a, &s(an), b, &s(bn), v).unwrap()
    };
    println!("  Q1 \u{2291}_V Q2: {}", rel(&q1, "q1", &q2, "q2", &views));
    println!(
        "  Q1 \u{2261}_V Q2: {}  (\"the two queries return the same certain answers\")",
        relatively_equivalent(&q1, &s("q1"), &q2, &s("q2"), &views).unwrap()
    );
    println!("  Q1 \u{2291}_V Q3: {}", rel(&q1, "q1", &q3, "q3", &views));

    let without_red = views.without("RedCars");
    println!(
        "  Q1 \u{2291}_V Q3 without RedCars: {}  (dropping a source flips the answer)",
        rel(&q1, "q1", &q3, "q3", &without_red)
    );
}
