//! Comparison predicates (§5): semi-interval constraints in queries and
//! views.
//!
//! ```sh
//! cargo run --example antiques_dealer
//! ```
//!
//! Reproduces Example 4 (the maximally-contained plan `P3` for the
//! antiques query `Q3`, where the `AntiqueCars` view already guarantees
//! `Year < 1970` so its disjunct needs no explicit constraint) and then
//! explores Theorem 5.1/5.3-style relative containments in a dealership
//! scenario.

use relcont::datalog::{parse_program, parse_query, Symbol};
use relcont::mediator::minicon::semi_interval_plan;
use relcont::mediator::relative::{max_contained_ucq_plan, relatively_contained};
use relcont::mediator::schema::LavSetting;

fn main() {
    let views = LavSetting::parse(&[
        "RedCars(CarNo, Model, Year) :- CarDesc(CarNo, Model, red, Year).",
        "AntiqueCars(CarNo, Model, Year) :- CarDesc(CarNo, Model, Color, Year), Year < 1970.",
        "CarAndDriver(Model, Review) :- Review(Model, Review, 10).",
    ])
    .unwrap();

    // Example 4: the maximally-contained plan for Q3.
    let q3 = parse_query(
        "q3(CarNo, Review) :- CarDesc(CarNo, Model, C, Y), Review(Model, Review, 10), Y < 1970.",
    )
    .unwrap();
    println!("== Example 4: maximally-contained plan P3 for Q3 ==");
    let p3 = semi_interval_plan(&q3, &views);
    for d in &p3.disjuncts {
        println!("  {}", d.to_rule());
    }
    println!("  (RedCars needs the explicit Year < 1970; AntiqueCars guarantees it)");

    // "Because P3 does not contain plan P1', we know that Q3 does not
    //  contain Q1 relative to the views."
    let q1 = parse_program(
        "q1(CarNo, Review) :- CarDesc(CarNo, Model, C, Y), Review(Model, Review, Rating).",
    )
    .unwrap();
    let q3p = parse_program(
        "q3(CarNo, Review) :- CarDesc(CarNo, Model, C, Y), Review(Model, Review, 10), Y < 1970.",
    )
    .unwrap();
    let s = |n: &str| Symbol::new(n);
    println!("\n== Relative containments around Q3 ==");
    println!(
        "  Q1 \u{2291}_V Q3: {}",
        relatively_contained(&q1, &s("q1"), &q3p, &s("q3"), &views).unwrap()
    );
    println!(
        "  Q3 \u{2291}_V Q1: {}",
        relatively_contained(&q3p, &s("q3"), &q1, &s("q1"), &views).unwrap()
    );

    // A dealership scenario: overlapping year windows.
    println!("\n== Dealer scenario: year windows ==");
    let dealer_views = LavSetting::parse(&[
        "Sixties(Car, Year) :- forsale(Car, Year), Year >= 1960, Year < 1970.",
        "PreWar(Car, Year) :- forsale(Car, Year), Year < 1939.",
        "AnyCar(Car, Year) :- forsale(Car, Year).",
    ])
    .unwrap();
    let antique = parse_program("qa(C) :- forsale(C, Y), Y < 1970.").unwrap();
    let vintage = parse_program("qv(C) :- forsale(C, Y), Y < 1950.").unwrap();
    let all = parse_program("qq(C) :- forsale(C, Y).").unwrap();

    // The plan for "vintage" can only use PreWar (Sixties is too late,
    // AnyCar is unconstrained).
    let vplan = max_contained_ucq_plan(&vintage, &s("qv"), &dealer_views).unwrap();
    println!("  plan for Q_vintage (< 1950):");
    for d in &vplan.disjuncts {
        println!("    {}", d.tidy_names().to_rule());
    }

    for (a, an, b, bn, note) in [
        (&vintage, "qv", &antique, "qa", "stronger window"),
        (
            &antique,
            "qa",
            &vintage,
            "qv",
            "certain antiques may be from the 60s",
        ),
        (&antique, "qa", &all, "qq", "window relaxed away"),
        (
            &all,
            "qq",
            &antique,
            "qa",
            "AnyCar answers escape every window",
        ),
    ] {
        let r = relatively_contained(a, &s(an), b, &s(bn), &dealer_views).unwrap();
        println!("  {an} \u{2291}_V {bn}: {r:5}  ({note})");
    }

    // Without the unconstrained AnyCar source, everything retrievable is
    // antique, so the broad query collapses into the antique one.
    let narrowed = dealer_views.without("AnyCar");
    let r = relatively_contained(&all, &s("qq"), &antique, &s("qa"), &narrowed).unwrap();
    println!("  qq \u{2291}_V qa without AnyCar: {r}  (all remaining sources are pre-1970)");
}
